package cqapprox

import (
	"context"
	"iter"

	"cqapprox/internal/eval"
	"cqapprox/internal/obs"
)

// PreparedQuery is the result of Engine.Prepare: a query whose static,
// NP-hard work (minimization, approximation search, plan selection) is
// already done. It is immutable and safe for concurrent use — a single
// PreparedQuery can serve Eval calls from many goroutines over many
// databases.
type PreparedQuery struct {
	src       *Query   // original query, as given
	min       *Query   // its minimization (the original itself for over-budget exact prepares)
	class     Class    // nil for PrepareExact
	opt       Options  // search options used
	approxes  []*Query // all minimized C-approximations; nil for exact
	chosen    *Query   // the query the plan evaluates
	plan      *eval.Plan
	par       int         // evaluation worker budget (≤1 = serial); see Parallel
	inspected int         // candidates inspected by the search (0 for exact)
	fromCache bool        // true when Prepare served this from the cache (see CacheHit)
	prep      []obs.Phase // prepare-phase wall times recorded by build (shared, immutable)
}

// Parallel returns a view of the prepared query whose evaluations run
// morsel-driven parallel on up to n workers (n ≤ 1 restores serial
// evaluation). The underlying plan and its statistics stay shared —
// only the worker budget differs — so the view is as cheap, immutable
// and goroutine-safe as the original, and answers are byte-identical
// to serial evaluation. The budget is inherited by Bind; naive
// (cyclic) plans ignore it.
//
// The engine-wide default budget (WithParallelism) applies when
// Parallel is never called.
func (p *PreparedQuery) Parallel(n int) *PreparedQuery {
	if n < 1 {
		n = 1
	}
	if n == p.parallelism() {
		return p
	}
	cp := *p
	cp.par = n
	return &cp
}

// Parallelism reports the effective evaluation worker budget: 1 for
// serial (the default), or whatever Parallel / the engine's
// WithParallelism set.
func (p *PreparedQuery) Parallelism() int {
	if p.par < 1 {
		return 1
	}
	return p.par
}

// parallelism is the internal alias of Parallelism.
func (p *PreparedQuery) parallelism() int { return p.Parallelism() }

// Query returns a copy of the original query this PreparedQuery was
// requested for. On cache hits the engine rebinds this to the caller's
// own query (see forCaller), so it is always the query you passed in,
// not another caller's alpha-variant.
func (p *PreparedQuery) Query() *Query { return p.src.Clone() }

// forCaller returns a shallow copy of p with the caller's own query
// identity: src is rebound to q and the head predicate names of the
// minimized query and the approximations are renamed after q, so cache
// hits never leak the first preparer's query name. Variable names are
// already canonical (build renames them), so beyond the head name
// every caller sees identical renderings. The plan is shared untouched
// and the inspected counter zeroed: this caller's Prepare ran no
// search.
func (p *PreparedQuery) forCaller(q *Query) *PreparedQuery {
	cp := *p
	cp.src = q.Clone()
	cp.inspected = 0
	cp.fromCache = true
	if cp.min.Name != q.Name {
		m := cp.min.Clone()
		m.Name = q.Name
		cp.min = m
	}
	if len(cp.approxes) > 0 {
		name := q.Name + "_approx"
		if cp.approxes[0].Name != name {
			renamed := make([]*Query, len(cp.approxes))
			for i, a := range cp.approxes {
				r := a.Clone()
				r.Name = name
				renamed[i] = r
			}
			cp.approxes = renamed
		}
		cp.chosen = cp.approxes[0]
	} else {
		cp.chosen = cp.min
	}
	return &cp
}

// Minimized returns a copy of the minimized original query, with
// canonically renamed variables. One exception: an over-budget
// PrepareExact (more than Options.MaxVars variables) skips
// minimization to avoid the exponential core computation, and
// Minimized then returns the original unminimized (still canonically
// renamed).
func (p *PreparedQuery) Minimized() *Query { return p.min.Clone() }

// Class returns the target class, or nil for PrepareExact.
func (p *PreparedQuery) Class() Class { return p.class }

// Approx returns a copy of the query the plan evaluates: the chosen
// C-approximation, or the minimized original for PrepareExact.
func (p *PreparedQuery) Approx() *Query { return p.chosen.Clone() }

// Approximations returns copies of all minimized C-approximations the
// search found (the paper's C-APPR_min(Q)), in deterministic order; the
// first is the one Eval uses. Nil for PrepareExact.
func (p *PreparedQuery) Approximations() []*Query {
	if p.approxes == nil {
		return nil
	}
	out := make([]*Query, len(p.approxes))
	for i, a := range p.approxes {
		out[i] = a.Clone()
	}
	return out
}

// CandidatesInspected reports how many in-class candidate tableaux the
// approximation search examined (0 on PrepareExact and, by design, on
// every cache hit — the point of preparing once).
func (p *PreparedQuery) CandidatesInspected() int { return p.inspected }

// CacheHit reports whether the Prepare that returned this value was
// served from the engine's cache (including being handed an in-flight
// leader's result) instead of running the pipeline itself. It mirrors
// exactly the hit CacheStats recorded for that Prepare, even under
// concurrent preparation of the same key.
func (p *PreparedQuery) CacheHit() bool { return p.fromCache }

// PlanMode names the evaluation strategy the plan selected
// ("yannakakis" or "naive").
func (p *PreparedQuery) PlanMode() string { return p.plan.Mode().String() }

// IndexStats returns the cumulative indexed-runtime counters of this
// prepared query's plan: hash indexes built over databases, rows
// driven through index probes, and evaluations run. The plan is shared
// across every cache hit of the same key, so the counters aggregate
// all callers — the per-plan view of what Engine.CacheStats sums over
// the whole cache.
func (p *PreparedQuery) IndexStats() IndexStats { return p.plan.IndexStats() }

// Eval evaluates the prepared (approximated) query on db, returning
// the full deduplicated answer set in sorted order. Only per-database
// work happens here: O(|D|·|Q'|) plus output cost for acyclic plans.
// With a worker budget (see Parallel), the evaluation's semijoin,
// join and projection loops fan out in fixed-size morsels.
func (p *PreparedQuery) Eval(ctx context.Context, db *Structure) (Answers, error) {
	return p.plan.EvalOn(ctx, eval.NewSource(db), p.parallelism())
}

// EvalBool reports whether the prepared query has at least one answer
// on db. For acyclic plans this is a single semijoin pass, O(|D|·|Q'|).
func (p *PreparedQuery) EvalBool(ctx context.Context, db *Structure) (bool, error) {
	return p.plan.EvalBoolOn(ctx, eval.NewSource(db), p.parallelism())
}

// Answers streams the distinct answers of the prepared query on db one
// at a time, in discovery order, without materialising the full result
// set — suitable for very large outputs:
//
//	for t := range p.Answers(ctx, db) {
//		process(t) // break any time
//	}
//
// Acyclic plans first run the Yannakakis semijoin reduction (O(|D|·|Q'|))
// so the enumeration only touches tuples that can participate in an
// answer. Iteration ends early on ctx cancellation; every delivered
// tuple is a correct answer regardless. To distinguish a cancelled
// (truncated) stream from an exhausted one, use AnswersErr.
func (p *PreparedQuery) Answers(ctx context.Context, db *Structure) iter.Seq[Tuple] {
	return p.plan.StreamOn(ctx, eval.NewSource(db), p.parallelism())
}

// AnswersErr is Answers plus a terminal-error accessor: call the
// returned function after the loop — nil means the enumeration ran to
// completion (or the consumer broke), a non-nil ErrCanceled-wrapped
// error means cancellation truncated it:
//
//	seq, errf := p.AnswersErr(ctx, db)
//	for t := range seq { process(t) }
//	if err := errf(); err != nil { /* truncated */ }
func (p *PreparedQuery) AnswersErr(ctx context.Context, db *Structure) (iter.Seq[Tuple], func() error) {
	return p.plan.StreamOnErr(ctx, eval.NewSource(db), p.parallelism())
}

// Bind pairs the prepared query with a database snapshot, yielding the
// evaluation surface over the snapshot's persistent shared indexes:
//
//	d, _, _ := engine.RegisterDB("social", structure) // index once
//	b := p.Bind(d)
//	ans, err := b.Eval(ctx)     // probe-only once the cache is warm
//	ok, err := b.EvalBool(ctx)
//	for t := range b.Answers(ctx) { … }
//
// Where Eval(ctx, *Structure) re-derives hash indexes per call, a
// bound evaluation probes indexes owned by the snapshot — built on
// first use, then reused by every prepared query and every call that
// binds the same snapshot. Bind itself does no work; a BoundQuery is
// immutable and safe for concurrent use.
func (p *PreparedQuery) Bind(db *Database) *BoundQuery {
	return &BoundQuery{p: p, db: db}
}

// BoundQuery is a PreparedQuery bound to a Database snapshot: the
// fully static pairing of a compiled plan with indexed data. Both
// halves are immutable, so a BoundQuery may serve concurrent
// evaluations from many goroutines. Evaluations run through the same
// unified executor as the unbound forms — the only difference is the
// storage backend: views and hash indexes come from the snapshot's
// persistent shared cache instead of being derived per call.
type BoundQuery struct {
	p  *PreparedQuery
	db *Database
}

// Prepared returns the prepared query half of the binding.
func (b *BoundQuery) Prepared() *PreparedQuery { return b.p }

// Database returns the snapshot half of the binding.
func (b *BoundQuery) Database() *Database { return b.db }

// Parallel returns a view of the bound query evaluating on up to n
// workers; see PreparedQuery.Parallel. The binding inherits its
// prepared query's budget until overridden here.
func (b *BoundQuery) Parallel(n int) *BoundQuery {
	p := b.p.Parallel(n)
	if p == b.p {
		return b
	}
	return &BoundQuery{p: p, db: b.db}
}

// source returns the snapshot-backed storage backend of the binding.
func (b *BoundQuery) source() eval.Source {
	return eval.NewSnapshotSource(b.db.snap)
}

// Eval evaluates the bound query, returning the full deduplicated
// answer set in sorted order — identical to p.Eval against the
// equivalent structure, minus the per-call index builds.
func (b *BoundQuery) Eval(ctx context.Context) (Answers, error) {
	return b.p.plan.EvalOn(ctx, b.source(), b.p.parallelism())
}

// EvalBool reports whether the bound query has at least one answer
// (a single probe-only semijoin pass for acyclic plans).
func (b *BoundQuery) EvalBool(ctx context.Context) (bool, error) {
	return b.p.plan.EvalBoolOn(ctx, b.source(), b.p.parallelism())
}

// Answers streams the distinct answers of the bound query; see
// PreparedQuery.Answers for the contract.
func (b *BoundQuery) Answers(ctx context.Context) iter.Seq[Tuple] {
	return b.p.plan.StreamOn(ctx, b.source(), b.p.parallelism())
}

// AnswersErr is Answers plus the terminal-error accessor; see
// PreparedQuery.AnswersErr.
func (b *BoundQuery) AnswersErr(ctx context.Context) (iter.Seq[Tuple], func() error) {
	return b.p.plan.StreamOnErr(ctx, b.source(), b.p.parallelism())
}
