package cqapprox

// Cluster-facing hooks of PreparedQuery: the routing predicates and
// result merges internal/server's scatter-gather coordinator needs.
// They live here (not in the server) because they are properties of
// the prepared plan — which query actually gets evaluated, what its
// head looks like — and because library embedders building their own
// distribution layer need exactly the same surface.

import (
	"fmt"

	"cqapprox/internal/eval"
)

// PartitionedOccurrences counts the atom occurrences of the evaluated
// query (the chosen approximation — what Eval actually runs) whose
// relation partitioned reports true. The cluster routing trichotomy
// branches on it: 0 — any full copy answers alone; 1 — scatter-gather
// over shards is exact (union-decomposable); ≥2 — per-shard evaluation
// could join tuples living on different shards, so the coordinator
// must evaluate its full copy instead.
func (p *PreparedQuery) PartitionedOccurrences(partitioned func(rel string) bool) int {
	return p.plan.PartitionedOccurrences(partitioned)
}

// CountSummable reports whether per-shard answer counts sum exactly to
// the global count for this prepared query: exactly one partitioned
// atom occurrence, all of whose arguments are head variables — then
// each answer determines the partitioned tuple it matched, per-shard
// answer sets are disjoint, and counts (exact or estimated) add.
func (p *PreparedQuery) CountSummable(partitioned func(rel string) bool) bool {
	return p.plan.CountSummable(partitioned)
}

// MergeAnswers recombines per-shard partial answer sets into exactly
// the answer set a single-node evaluation under the same options would
// return: sorted lexicographically and deduplicated, or — when the
// options carry WithOrder/WithDescending/WithLimit — sorted under the
// ranked key and truncated. Each part must itself be the result of
// evaluating this query (under the same options) on one shard.
func (p *PreparedQuery) MergeAnswers(parts []Answers, opts ...EvalOption) (Answers, error) {
	cfg := optConfigOf(opts)
	if !cfg.ranked() {
		return eval.MergeAnswerSets(parts), nil
	}
	spec, err := p.rankSpec(&cfg)
	if err != nil {
		return nil, err
	}
	return eval.MergeRankedAnswers(parts, len(p.src.Head), spec), nil
}

// ForwardOrder translates ranked-evaluation order names from the
// original query's head to the evaluated approximation's: a
// coordinator forwards the approximation (not the original query) to
// its peers, so the order names must name that query's head variables.
// Positions correspond — both heads bind the same answer column — and
// repeated head variables compare equal at their later positions, so
// first-position resolution on the peer preserves the order. The error
// wraps ErrBadOrder.
func (p *PreparedQuery) ForwardOrder(order []string) ([]string, error) {
	if len(order) == 0 {
		return nil, nil
	}
	cfg := optConfig{order: order}
	spec, err := p.rankSpec(&cfg)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(spec.Order))
	for i, pos := range spec.Order {
		if pos >= len(p.chosen.Head) {
			return nil, fmt.Errorf("%w: head width mismatch between query and approximation", ErrBadOrder)
		}
		out[i] = p.chosen.Head[pos]
	}
	return out, nil
}
