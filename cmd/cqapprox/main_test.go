package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cqapprox/api"
)

// captureStdout runs fn with os.Stdout redirected to a pipe and
// returns what it printed. The pipe is drained concurrently so large
// outputs cannot deadlock the writer.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	outc := make(chan string, 1)
	go func() {
		buf := new(strings.Builder)
		io.Copy(buf, r)
		outc <- buf.String()
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	out := <-outc
	if ferr != nil {
		t.Fatalf("%v (output %q)", ferr, out)
	}
	return out
}

func TestClassFromName(t *testing.T) {
	for _, name := range []string{"TW1", "tw2", "TW3", "AC", "ac", "HTW1", "HTW2", "GHTW1", "GHTW2"} {
		if _, err := classFromName(name); err != nil {
			t.Errorf("classFromName(%q): %v", name, err)
		}
	}
	if _, err := classFromName("TW9"); err == nil {
		t.Error("unknown class accepted")
	}
	c, _ := classFromName("tw1")
	if c.Name() != "TW(1)" {
		t.Errorf("Name = %q", c.Name())
	}
}

func TestLoadDB(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.txt")
	content := "# a comment\nE 1 2\nE 2 3\n\nR 1 2 3\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := LoadDB(path)
	if err != nil {
		t.Fatal(err)
	}
	if !db.Has("E", 1, 2) || !db.Has("E", 2, 3) || !db.Has("R", 1, 2, 3) {
		t.Fatalf("db = %v", db)
	}
	if db.NumFacts() != 3 {
		t.Fatalf("NumFacts = %d", db.NumFacts())
	}
}

// -json emits the server's wire shapes: approx an api.PrepareResponse,
// eval an api.EvalResponse / api.EvalBoolResponse, eval -stream NDJSON
// tuples — decodable with the same api types a client of cqapproxd
// uses.
func TestJSONOutput(t *testing.T) {
	dir := t.TempDir()
	dbPath := filepath.Join(dir, "graph.txt")
	if err := os.WriteFile(dbPath, []byte("E 1 2\nE 2 3\nE 3 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	out := captureStdout(t, func() error {
		return cmdApprox([]string{"-q", "Q(x) :- E(x,y), E(y,z), E(z,x)", "-class", "TW1", "-json"})
	})
	var prep api.PrepareResponse
	if err := json.Unmarshal([]byte(out), &prep); err != nil {
		t.Fatalf("approx -json output undecodable: %v\n%s", err, out)
	}
	if prep.Key == "" || prep.Class != "TW(1)" || prep.Plan != "yannakakis" ||
		prep.Approximation != "Q_approx(x0) :- E(x0,x1), E(x1,x0), E(x1,x1)" {
		t.Fatalf("approx -json = %+v", prep)
	}

	out = captureStdout(t, func() error {
		return cmdEval([]string{"-q", "Q(x,z) :- E(x,y), E(y,z)", "-db", dbPath, "-json"})
	})
	var ev api.EvalResponse
	if err := json.Unmarshal([]byte(out), &ev); err != nil {
		t.Fatalf("eval -json output undecodable: %v\n%s", err, out)
	}
	if ev.Count != 3 || len(ev.Answers) != 3 {
		t.Fatalf("eval -json = %+v", ev)
	}

	out = captureStdout(t, func() error {
		return cmdEval([]string{"-q", "Q() :- E(x,x)", "-db", dbPath, "-json"})
	})
	var bv api.EvalBoolResponse
	if err := json.Unmarshal([]byte(out), &bv); err != nil || bv.Result {
		t.Fatalf("boolean eval -json = %q (%v)", out, err)
	}

	out = captureStdout(t, func() error {
		return cmdEval([]string{"-q", "Q(x,z) :- E(x,y), E(y,z)", "-db", dbPath, "-stream", "-json"})
	})
	lines := strings.Fields(out)
	if len(lines) != 3 {
		t.Fatalf("stream -json: want 3 NDJSON lines, got %q", out)
	}
	for _, line := range lines {
		var tup []int
		if err := json.Unmarshal([]byte(line), &tup); err != nil || len(tup) != 2 {
			t.Fatalf("stream -json line %q: %v", line, err)
		}
	}

	out = captureStdout(t, func() error {
		return cmdClassify([]string{"-q", "Q() :- E(x,y), E(y,z), E(z,x)", "-json"})
	})
	var cl api.ClassifyResponse
	if err := json.Unmarshal([]byte(out), &cl); err != nil {
		t.Fatalf("classify -json output undecodable: %v\n%s", err, out)
	}
	if cl.Kind != "non-bipartite" || cl.LoopFreeTW[1] || !cl.LoopFreeTW[2] {
		t.Fatalf("classify -json = %+v", cl)
	}
}

// The count subcommand in both modes, against plain and registered
// databases, with -json emitting the server's api.CountResponse shape.
func TestCountCommand(t *testing.T) {
	dir := t.TempDir()
	dbPath := filepath.Join(dir, "path.txt")
	if err := os.WriteFile(dbPath, []byte("E 1 2\nE 2 3\nE 3 4\nE 4 5\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	out := captureStdout(t, func() error {
		return cmdCount([]string{"-q", "Q(x,y,z) :- E(x,y), E(y,z)", "-db", dbPath, "-json"})
	})
	var res api.CountResponse
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("count -json output undecodable: %v\n%s", err, out)
	}
	if res.Count != 3 || res.Estimated || res.Mode != "exact-dp" {
		t.Fatalf("count -json = %+v", res)
	}

	out = captureStdout(t, func() error {
		return cmdCount([]string{"-q", "Q(x,y,z) :- E(x,y), E(y,z)", "-db", dbPath,
			"-db-register", "path", "-parallel", "2"})
	})
	if !strings.HasPrefix(out, "3 (exact-dp)") {
		t.Fatalf("registered count output = %q", out)
	}

	out = captureStdout(t, func() error {
		return cmdCount([]string{"-q", "Q(x,z) :- E(x,y), E(y,z)", "-db", dbPath,
			"-estimate", "-epsilon", "0.25", "-seed", "7", "-json"})
	})
	var est api.CountResponse
	if err := json.Unmarshal([]byte(out), &est); err != nil {
		t.Fatalf("count -estimate -json output undecodable: %v\n%s", err, out)
	}
	if !est.Estimated || est.Mode != "estimate" || est.Samples == 0 {
		t.Fatalf("count -estimate -json = %+v", est)
	}
	if rel := est.Estimate/3 - 1; rel > 0.25 || rel < -0.25 {
		t.Fatalf("estimate %v for true count 3 misses ε=0.25", est.Estimate)
	}

	if err := cmdCount([]string{"-q", "Q(x) :- E(x,y)", "-db", dbPath, "-epsilon", "0.1"}); err == nil {
		t.Fatal("estimator knobs without -estimate accepted")
	}
}

func TestLoadDBErrors(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("E one two\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDB(bad); err == nil {
		t.Error("non-integer arguments accepted")
	}
	short := filepath.Join(dir, "short.txt")
	if err := os.WriteFile(short, []byte("E\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDB(short); err == nil {
		t.Error("relation without arguments accepted")
	}
	if _, err := LoadDB(filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("missing file accepted")
	}
}
