package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestClassFromName(t *testing.T) {
	for _, name := range []string{"TW1", "tw2", "TW3", "AC", "ac", "HTW1", "HTW2", "GHTW1", "GHTW2"} {
		if _, err := classFromName(name); err != nil {
			t.Errorf("classFromName(%q): %v", name, err)
		}
	}
	if _, err := classFromName("TW9"); err == nil {
		t.Error("unknown class accepted")
	}
	c, _ := classFromName("tw1")
	if c.Name() != "TW(1)" {
		t.Errorf("Name = %q", c.Name())
	}
}

func TestLoadDB(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.txt")
	content := "# a comment\nE 1 2\nE 2 3\n\nR 1 2 3\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := LoadDB(path)
	if err != nil {
		t.Fatal(err)
	}
	if !db.Has("E", 1, 2) || !db.Has("E", 2, 3) || !db.Has("R", 1, 2, 3) {
		t.Fatalf("db = %v", db)
	}
	if db.NumFacts() != 3 {
		t.Fatalf("NumFacts = %d", db.NumFacts())
	}
}

func TestLoadDBErrors(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("E one two\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDB(bad); err == nil {
		t.Error("non-integer arguments accepted")
	}
	short := filepath.Join(dir, "short.txt")
	if err := os.WriteFile(short, []byte("E\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDB(short); err == nil {
		t.Error("relation without arguments accepted")
	}
	if _, err := LoadDB(filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("missing file accepted")
	}
}
