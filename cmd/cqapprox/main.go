// Command cqapprox is the CLI for the library: parse and analyse
// conjunctive queries, compute approximations within tractable classes,
// check approximation-hood, and evaluate queries on databases.
//
// Usage:
//
//	cqapprox parse    -q "Q(x) :- E(x,y), E(y,z), E(z,x)"
//	cqapprox classify -q "Q() :- E(x,y), E(y,z), E(z,x)" [-json]
//	cqapprox approx   -q "..." -class TW1 [-all] [-timeout 30s] [-json]
//	cqapprox explain  -q "..." [-class TW1] [-timeout 30s] [-json]
//	cqapprox check    -q "..." -cand "..." -class AC
//	cqapprox eval     -q "..." -db graph.txt [-engine auto|naive|yannakakis|td]
//	                  [-class TW1] [-db-register name] [-stream] [-parallel 8]
//	                  [-order z,x] [-desc] [-limit 10]
//	                  [-trace] [-timeout 30s] [-json]
//	cqapprox count    -q "..." -db graph.txt [-class TW1] [-db-register name]
//	                  [-estimate] [-epsilon 0.1] [-delta 0.05] [-seed 7]
//	                  [-max-samples N] [-parallel 8] [-trace] [-timeout 30s] [-json]
//	cqapprox subscribe -addr http://localhost:8080 -q "..." -db name
//	                  [-class TW1] [-frames N] [-timeout 30s] [-json]
//
// The approx and eval commands run on a cqapprox.Engine: queries are
// prepared once (minimize → approximate → plan) and evaluated through
// the prepared plan, with -timeout cancelling long searches cleanly.
// eval -class evaluates the query's C-approximation instead of the
// query itself; -stream prints answers as they are found instead of
// materialising the sorted answer set; -db-register snapshots the
// database into the engine's registry first and evaluates against the
// snapshot's persistent indexes (the register-once path cqapproxd's
// eval-by-name requests take). eval -order ranks the answers by the
// named head variables (with -limit N only the first N of the order
// are computed where the plan's join forest admits the key — see
// explain's "ranked" line); -desc reverses, -limit alone truncates.
//
// explain prints the prepared plan's structure without touching any
// data: evaluation mode, per-tree join-forest shape, re-rooting and
// dead-step decisions, the counting classification, and the prepare
// phase timings. eval -trace and count -trace additionally print the
// execution trace of the one evaluation that ran — per-node semijoin
// row counts, survivor counts, index activity, phase wall times, and
// morsel/worker accounting for parallel runs.
//
// -json switches classify/approx/eval to machine-readable output in
// exactly the wire shapes the cqapproxd server emits (package api):
// approx prints an api.PrepareResponse (including the cache key a
// server would return), eval an api.EvalResponse / api.EvalBoolResponse,
// eval -stream NDJSON answer lines.
//
// Database files contain one fact per line: a relation name followed by
// integer arguments, e.g. "E 1 2". Lines starting with '#' are ignored.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"iter"
	"os"
	"strconv"
	"strings"
	"time"

	"cqapprox"
	"cqapprox/api"
	"cqapprox/client"
)

// engine is the process-wide prepared-query engine all commands share.
var engine = cqapprox.NewEngine()

// withTimeout builds the command context from a -timeout flag value;
// zero means no deadline.
func withTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), d)
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "parse":
		err = cmdParse(os.Args[2:])
	case "classify":
		err = cmdClassify(os.Args[2:])
	case "approx":
		err = cmdApprox(os.Args[2:])
	case "explain":
		err = cmdExplain(os.Args[2:])
	case "check":
		err = cmdCheck(os.Args[2:])
	case "eval":
		err = cmdEval(os.Args[2:])
	case "count":
		err = cmdCount(os.Args[2:])
	case "subscribe":
		err = cmdSubscribe(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "cqapprox: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cqapprox:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: cqapprox <command> [flags]

commands:
  parse     parse a query and report treewidth / acyclicity / hypertree width
  classify  Theorem 5.1 trichotomy classification for graph queries
  approx    compute C-approximations (-class TW1|TW2|TW3|AC|HTW1|HTW2|GHTW1|GHTW2)
            [-all] [-timeout 30s] [-v]
  explain   print the prepared plan's structure (EXPLAIN): join-forest shape,
            re-rooting, dead steps, counting classification; [-class TW1]
            explains the approximation's plan instead of the exact one
  check     decide whether -cand is a C-approximation of -q
  eval      evaluate a query on a database file (one fact per line: "E 1 2")
            [-class TW1] evaluates its approximation; [-stream] streams answers;
            [-db-register name] evaluates via a registered snapshot;
            [-parallel N] evaluates morsel-driven parallel on N workers;
            [-order x,y] ranks answers by head variables ([-desc] reverses);
            [-limit N] keeps only the first N answers (early termination
            where the plan admits the order);
            [-trace] prints the execution trace (ANALYZE) of the run
  count     count answers without materializing them; [-estimate] runs the
            (1±ε, 1-δ) sampling estimator ([-epsilon] [-delta] [-seed]
            [-max-samples]); [-trace] prints the counting pass's execution
            trace; other flags as for eval
  subscribe watch a live query on a running cqapproxd: -addr server, -db
            registered database name; prints the init frame then one diff
            per server-side update ([-frames N] exits after N frames;
            [-json] prints raw api.DiffFrame lines)`)
}

// classFromName resolves a class name; the accepted names are the wire
// names of the HTTP API (api.ParseClass), so CLI and server agree.
func classFromName(name string) (cqapprox.Class, error) {
	return api.ParseClass(name)
}

// emitJSON prints v compactly on stdout — the same encoding the server
// puts on the wire.
func emitJSON(v any) error {
	return json.NewEncoder(os.Stdout).Encode(v)
}

func cmdParse(args []string) error {
	fs := flag.NewFlagSet("parse", flag.ExitOnError)
	src := fs.String("q", "", "query in rule notation")
	fs.Parse(args)
	q, err := cqapprox.Parse(*src)
	if err != nil {
		return err
	}
	fmt.Println("query:          ", q)
	fmt.Println("variables:      ", q.NumVars())
	fmt.Println("joins:          ", q.NumJoins())
	fmt.Println("boolean:        ", q.IsBoolean())
	fmt.Println("treewidth:      ", cqapprox.Treewidth(q))
	fmt.Println("acyclic:        ", cqapprox.IsAcyclic(q))
	fmt.Println("hypertree width:", cqapprox.HypertreeWidth(q))
	m := cqapprox.Minimize(q)
	fmt.Println("minimized:      ", m)
	return nil
}

func cmdClassify(args []string) error {
	fs := flag.NewFlagSet("classify", flag.ExitOnError)
	src := fs.String("q", "", "query in rule notation")
	jsonOut := fs.Bool("json", false, "machine-readable output (api.ClassifyResponse)")
	fs.Parse(args)
	q, err := cqapprox.Parse(*src)
	if err != nil {
		return err
	}
	kind, err := cqapprox.ClassifyGraphTableau(q)
	if err != nil {
		return err
	}
	if *jsonOut {
		resp := api.ClassifyResponse{Query: q.String(), Kind: kind.String(), LoopFreeTW: map[int]bool{}}
		for _, k := range []int{1, 2} {
			ok, err := cqapprox.HasLoopFreeTWkApproximation(q, k)
			if err != nil {
				return err
			}
			resp.LoopFreeTW[k] = ok
		}
		return emitJSON(resp)
	}
	fmt.Println("tableau kind:", kind)
	switch kind {
	case cqapprox.NonBipartite:
		fmt.Println("Theorem 5.1: only the trivial acyclic approximation E(x,x) (Boolean case)")
	case cqapprox.BipartiteUnbalanced:
		fmt.Println("Theorem 5.1: unique acyclic approximation K2↔ (Boolean case)")
	case cqapprox.BipartiteBalanced:
		fmt.Println("Theorem 5.1: nontrivial acyclic approximations, none with a 2-cycle")
	}
	for _, k := range []int{1, 2} {
		ok, err := cqapprox.HasLoopFreeTWkApproximation(q, k)
		if err != nil {
			return err
		}
		fmt.Printf("loop-free TW(%d) approximation exists ((%d)-colorable): %v\n", k, k+1, ok)
	}
	return nil
}

func cmdApprox(args []string) error {
	fs := flag.NewFlagSet("approx", flag.ExitOnError)
	src := fs.String("q", "", "query in rule notation")
	className := fs.String("class", "TW1", "target class")
	all := fs.Bool("all", false, "list all approximations up to equivalence")
	over := fs.Bool("over", false, "compute overapproximations (minimal containing C-queries) instead")
	maxVars := fs.Int("maxvars", 10, "variable bound for the search")
	extras := fs.Int("extras", 1, "extra atoms for hypergraph-based classes")
	fresh := fs.Int("fresh", 0, "fresh variables per extra atom")
	timeout := fs.Duration("timeout", 0, "abort the search after this long (0 = no limit)")
	verbose := fs.Bool("v", false, "report plan mode and search statistics")
	jsonOut := fs.Bool("json", false, "machine-readable output (api.PrepareResponse, as the server emits)")
	fs.Parse(args)
	q, err := cqapprox.Parse(*src)
	if err != nil {
		return err
	}
	c, err := classFromName(*className)
	if err != nil {
		return err
	}
	opt := cqapprox.Options{MaxVars: *maxVars, MaxExtraAtoms: *extras, FreshVars: *fresh}
	if *over {
		if *jsonOut {
			return fmt.Errorf("-json does not support -over (no server wire shape for overapproximations yet)")
		}
		overs, err := cqapprox.Overapproximations(q, c, opt)
		if err != nil {
			return err
		}
		fmt.Printf("%d %s-overapproximation(s) of %v:\n", len(overs), c.Name(), q)
		for _, o := range overs {
			fmt.Printf("  %v   (%d joins)\n", o, o.NumJoins())
		}
		return nil
	}
	ctx, cancel := withTimeout(*timeout)
	defer cancel()
	p, err := engine.PrepareOpt(ctx, q, c, opt)
	if err != nil {
		return err
	}
	if *jsonOut {
		key, err := engine.CacheKey(q, c, opt)
		if err != nil {
			return err
		}
		return emitJSON(api.NewPrepareResponse(p, api.EncodeKey(key)))
	}
	if *all {
		apps := p.Approximations()
		fmt.Printf("%d %s-approximation(s) of %v:\n", len(apps), c.Name(), q)
		for _, a := range apps {
			fmt.Printf("  %v   (%d joins)\n", a, a.NumJoins())
		}
	} else {
		fmt.Println(p.Approx())
	}
	if *verbose {
		fmt.Printf("plan: %s; candidates inspected: %d\n", p.PlanMode(), p.CandidatesInspected())
	}
	return nil
}

// cmdExplain prepares the query (exactly, or its -class approximation)
// and prints the plan's static structure — the same text and wire shape
// the server's POST /v1/explain returns. No database is touched.
func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	src := fs.String("q", "", "query in rule notation")
	className := fs.String("class", "", "explain the plan of the query's C-approximation (empty = the exact query)")
	timeout := fs.Duration("timeout", 0, "abort the preparation after this long (0 = no limit)")
	jsonOut := fs.Bool("json", false, "machine-readable output (api.ExplainResponse, as the server emits)")
	fs.Parse(args)
	q, err := cqapprox.Parse(*src)
	if err != nil {
		return err
	}
	var c cqapprox.Class
	if *className != "" {
		if c, err = classFromName(*className); err != nil {
			return err
		}
	}
	ctx, cancel := withTimeout(*timeout)
	defer cancel()
	var p *cqapprox.PreparedQuery
	if c != nil {
		p, err = engine.Prepare(ctx, q, c)
	} else {
		p, err = engine.PrepareExact(ctx, q)
	}
	if err != nil {
		return err
	}
	ex := p.Explain()
	if *jsonOut {
		key, err := engine.CacheKey(q, c, engine.Options())
		if err != nil {
			return err
		}
		return emitJSON(api.ExplainResponse{Key: api.EncodeKey(key), Explain: ex, Text: ex.Text()})
	}
	fmt.Printf("query: %v\n", q)
	if m := ex.Minimized; m != "" && m != ex.Query {
		fmt.Printf("minimized: %s\n", m)
	}
	fmt.Print(ex.Text())
	return nil
}

func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	src := fs.String("q", "", "query in rule notation")
	cand := fs.String("cand", "", "candidate approximation")
	className := fs.String("class", "TW1", "target class")
	fs.Parse(args)
	q, err := cqapprox.Parse(*src)
	if err != nil {
		return err
	}
	cd, err := cqapprox.Parse(*cand)
	if err != nil {
		return err
	}
	c, err := classFromName(*className)
	if err != nil {
		return err
	}
	ok, err := cqapprox.IsApproximation(q, cd, c, cqapprox.DefaultOptions())
	if err != nil {
		return err
	}
	fmt.Printf("%v is a %s-approximation of %v: %v\n", cd, c.Name(), q, ok)
	return nil
}

func cmdEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	src := fs.String("q", "", "query in rule notation")
	dbPath := fs.String("db", "", "database file (one fact per line)")
	dbRegister := fs.String("db-register", "", "register the database under this name and evaluate against the registered snapshot (persistent shared indexes, as cqapproxd's eval-by-name does)")
	engineName := fs.String("engine", "auto", "auto|naive|yannakakis|td")
	className := fs.String("class", "", "evaluate the query's C-approximation instead (e.g. TW1, AC)")
	stream := fs.Bool("stream", false, "print answers as they are found (discovery order)")
	parallel := fs.Int("parallel", 1, "evaluation worker budget (morsel-driven parallel eval; <= 1 serial)")
	order := fs.String("order", "", "comma-separated head variables to rank answers by, most significant first (remaining head positions complete the key)")
	desc := fs.Bool("desc", false, "reverse the answer order (with or without -order)")
	limit := fs.Int("limit", 0, "print only the first N answers (ordered with -order/-desc, any-N otherwise; 0 = all)")
	trace := fs.Bool("trace", false, "print the execution trace (ANALYZE) of the evaluation")
	timeout := fs.Duration("timeout", 0, "abort after this long (0 = no limit)")
	jsonOut := fs.Bool("json", false, "machine-readable output (api.EvalResponse; with -stream, NDJSON answer lines)")
	fs.Parse(args)
	q, err := cqapprox.Parse(*src)
	if err != nil {
		return err
	}
	db, err := LoadDB(*dbPath)
	if err != nil {
		return err
	}
	if *stream && *engineName != "auto" {
		return fmt.Errorf("-stream requires -engine auto (streaming runs through the prepared plan)")
	}
	if *dbRegister != "" && *engineName != "auto" {
		return fmt.Errorf("-db-register requires -engine auto (snapshot evaluation runs through the prepared plan)")
	}
	if *parallel > 1 && *engineName != "auto" {
		return fmt.Errorf("-parallel requires -engine auto (parallel evaluation runs through the prepared plan)")
	}
	if *trace && *engineName != "auto" {
		return fmt.Errorf("-trace requires -engine auto (tracing runs through the prepared plan)")
	}
	if *trace && *stream {
		return fmt.Errorf("-trace is incompatible with -stream (the trace is complete only after the last answer)")
	}
	if *stream && q.IsBoolean() {
		return fmt.Errorf("-stream requires a non-Boolean query (a Boolean query has a single true/false answer)")
	}
	ranked := *order != "" || *desc || *limit != 0
	if ranked && *engineName != "auto" {
		return fmt.Errorf("-order, -desc and -limit require -engine auto (ranked evaluation runs through the prepared plan)")
	}
	if ranked && *trace {
		return fmt.Errorf("-trace is incompatible with -order, -desc and -limit")
	}
	if ranked && q.IsBoolean() {
		return fmt.Errorf("-order, -desc and -limit require a non-Boolean query")
	}
	if *limit < 0 {
		return fmt.Errorf("-limit must be nonnegative (0 = all answers)")
	}
	var evalOpts []cqapprox.EvalOption
	if *order != "" {
		names := strings.Split(*order, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
		evalOpts = append(evalOpts, cqapprox.WithOrder(names...))
	}
	if *desc {
		evalOpts = append(evalOpts, cqapprox.WithDescending())
	}
	if *limit > 0 {
		evalOpts = append(evalOpts, cqapprox.WithLimit(*limit))
	}
	ctx, cancel := withTimeout(*timeout)
	defer cancel()

	// -class swaps the query for its prepared C-approximation before
	// any engine runs.
	target := q
	var p *cqapprox.PreparedQuery
	if *className != "" {
		c, err := classFromName(*className)
		if err != nil {
			return err
		}
		if p, err = engine.Prepare(ctx, q, c); err != nil {
			return err
		}
		target = p.Approx()
		if !*jsonOut { // the comment line would corrupt machine-readable output
			how := "plan: " + p.PlanMode()
			if *engineName != "auto" {
				how = "engine: " + *engineName
			}
			fmt.Printf("# evaluating %s-approximation %v (%s)\n", c.Name(), target, how)
		}
	}

	// Explicitly chosen engines bypass the prepared plan but still
	// honour -class (via target) and -timeout (via ctx).
	switch *engineName {
	case "auto":
	case "naive":
		ans, err := cqapprox.NaiveEvalCtx(ctx, target, db)
		if err != nil {
			return err
		}
		return printAnswers(target, ans, *jsonOut)
	case "yannakakis":
		ans, err := cqapprox.YannakakisCtx(ctx, target, db)
		if err != nil {
			return err
		}
		return printAnswers(target, ans, *jsonOut)
	case "td":
		ans, err := cqapprox.EvalByTreeDecompositionCtx(ctx, target, db)
		if err != nil {
			return err
		}
		return printAnswers(target, ans, *jsonOut)
	default:
		return fmt.Errorf("unknown engine %q", *engineName)
	}

	if p == nil {
		if p, err = engine.PrepareExact(ctx, q); err != nil {
			return err
		}
	}
	if *parallel > 1 {
		evalOpts = append(evalOpts, cqapprox.WithEvalParallelism(*parallel))
		// The trace entry points carry no option surface, so the worker
		// budget reaches them through the (deprecated) parallel view.
		p = p.Parallel(*parallel)
	}
	// -db-register snapshots the file into the engine's registry and
	// evaluates through the snapshot's persistent indexes — the same
	// path cqapproxd's eval-by-name requests take.
	var bound *cqapprox.BoundQuery
	if *dbRegister != "" {
		d, _, err := engine.RegisterDB(*dbRegister, db)
		if err != nil {
			return err
		}
		bound = p.Bind(d)
	}
	if *stream {
		var (
			seq  iter.Seq[cqapprox.Tuple]
			errf func() error
		)
		if bound != nil {
			seq, errf = bound.AnswersErr(ctx, evalOpts...)
		} else {
			seq, errf = p.AnswersErr(ctx, db, evalOpts...)
		}
		n := 0
		for t := range seq {
			if *jsonOut {
				if err := emitJSON([]int(t)); err != nil {
					return err
				}
			} else {
				fmt.Println(t)
			}
			n++
		}
		if err := errf(); err != nil {
			return fmt.Errorf("stream interrupted after %d answers: %w", n, err)
		}
		if !*jsonOut {
			fmt.Printf("(%d answers)\n", n)
		}
		return nil
	}
	if q.IsBoolean() {
		var (
			ok bool
			tr *cqapprox.ExecTrace
		)
		switch {
		case *trace && bound != nil:
			ok, tr, err = bound.EvalBoolTrace(ctx)
		case *trace:
			ok, tr, err = p.EvalBoolTrace(ctx, db)
		case bound != nil:
			ok, err = bound.EvalBool(ctx, evalOpts...)
		default:
			ok, err = p.EvalBool(ctx, db, evalOpts...)
		}
		if err != nil {
			return err
		}
		if *jsonOut {
			return emitJSON(api.EvalBoolResponse{Result: ok, Trace: tr})
		}
		fmt.Println(ok)
		if tr != nil {
			fmt.Print(tr.Text())
		}
		return nil
	}
	var (
		ans cqapprox.Answers
		tr  *cqapprox.ExecTrace
	)
	switch {
	case *trace && bound != nil:
		ans, tr, err = bound.EvalTrace(ctx)
	case *trace:
		ans, tr, err = p.EvalTrace(ctx, db)
	case bound != nil:
		ans, err = bound.Eval(ctx, evalOpts...)
	default:
		ans, err = p.Eval(ctx, db, evalOpts...)
	}
	if err != nil {
		return err
	}
	if tr == nil {
		return printAnswers(q, ans, *jsonOut)
	}
	if *jsonOut {
		return emitJSON(api.EvalResponse{Answers: api.FromAnswers(ans), Count: len(ans), Trace: tr})
	}
	for _, t := range ans {
		fmt.Println(t)
	}
	fmt.Printf("(%d answers)\n", len(ans))
	fmt.Print(tr.Text())
	return nil
}

// cmdCount counts answers through the prepared plan without
// materializing them: the exact multiplicity DP where the head
// structure allows, or — with -estimate — the sampling estimator
// under -epsilon/-delta/-seed. The database, -class, -db-register,
// -parallel and -timeout flags behave exactly as in eval.
func cmdCount(args []string) error {
	fs := flag.NewFlagSet("count", flag.ExitOnError)
	src := fs.String("q", "", "query in rule notation")
	dbPath := fs.String("db", "", "database file (one fact per line)")
	dbRegister := fs.String("db-register", "", "register the database under this name and count against the registered snapshot")
	className := fs.String("class", "", "count the query's C-approximation instead (e.g. TW1, AC)")
	estimate := fs.Bool("estimate", false, "run the sampling estimator instead of exact counting")
	epsilon := fs.Float64("epsilon", 0, "estimator relative error target in (0,1] (0 = library default)")
	delta := fs.Float64("delta", 0, "estimator failure probability in (0,1) (0 = library default)")
	seed := fs.Int64("seed", 0, "estimator seed for reproducible runs")
	maxSamples := fs.Int("max-samples", 0, "estimator sample budget cap (0 = library default)")
	trace := fs.Bool("trace", false, "print the execution trace (ANALYZE) of the counting pass")
	parallel := fs.Int("parallel", 1, "worker budget for the counting passes (<= 1 serial)")
	timeout := fs.Duration("timeout", 0, "abort after this long (0 = no limit)")
	jsonOut := fs.Bool("json", false, "machine-readable output (api.CountResponse, as the server emits)")
	fs.Parse(args)
	q, err := cqapprox.Parse(*src)
	if err != nil {
		return err
	}
	db, err := LoadDB(*dbPath)
	if err != nil {
		return err
	}
	// Only flags the user actually set become options, so the library
	// defaults (and the default seed) apply otherwise — same convention
	// as the server's omitted-knob handling.
	var opts []cqapprox.CountOption
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "epsilon":
			opts = append(opts, cqapprox.WithEpsilon(*epsilon))
		case "delta":
			opts = append(opts, cqapprox.WithDelta(*delta))
		case "seed":
			opts = append(opts, cqapprox.WithSeed(*seed))
		case "max-samples":
			opts = append(opts, cqapprox.WithMaxSamples(*maxSamples))
		}
	})
	if len(opts) > 0 && !*estimate {
		return fmt.Errorf("-epsilon, -delta, -seed and -max-samples require -estimate")
	}
	if *trace {
		opts = append(opts, cqapprox.WithTrace())
	}
	if *parallel > 1 {
		opts = append(opts, cqapprox.WithEvalParallelism(*parallel))
	}
	ctx, cancel := withTimeout(*timeout)
	defer cancel()

	var p *cqapprox.PreparedQuery
	if *className != "" {
		c, err := classFromName(*className)
		if err != nil {
			return err
		}
		if p, err = engine.Prepare(ctx, q, c); err != nil {
			return err
		}
		if !*jsonOut {
			fmt.Printf("# counting %s-approximation %v (plan: %s)\n", c.Name(), p.Approx(), p.PlanMode())
		}
	} else if p, err = engine.PrepareExact(ctx, q); err != nil {
		return err
	}

	var res *cqapprox.CountResult
	if *dbRegister != "" {
		d, _, err := engine.RegisterDB(*dbRegister, db)
		if err != nil {
			return err
		}
		b := p.Bind(d)
		if *estimate {
			res, err = b.EstimateCount(ctx, opts...)
		} else {
			res, err = b.Count(ctx, opts...)
		}
		if err != nil {
			return err
		}
	} else {
		if *estimate {
			res, err = p.EstimateCount(ctx, db, opts...)
		} else {
			res, err = p.Count(ctx, db, opts...)
		}
		if err != nil {
			return err
		}
	}
	if *jsonOut {
		return emitJSON(api.CountResponse{
			Count:     res.Count,
			Estimate:  res.Estimate,
			Estimated: res.Estimated,
			Mode:      res.Mode,
			Samples:   res.Samples,
			Batches:   res.Batches,
			Epsilon:   res.Epsilon,
			Delta:     res.Delta,
			Trace:     res.Trace,
		})
	}
	if res.Estimated {
		fmt.Printf("%.1f (estimated; %d samples in %d batches, ε=%g δ=%g)\n",
			res.Estimate, res.Samples, res.Batches, res.Epsilon, res.Delta)
	} else {
		fmt.Printf("%d (%s)\n", res.Count, res.Mode)
	}
	if res.Trace != nil {
		fmt.Print(res.Trace.Text())
	}
	return nil
}

// cmdSubscribe watches a live query on a running cqapproxd — the only
// CLI command that talks to a server rather than evaluating in-process,
// because a subscription only means something against a registered
// database that other clients keep updating. It prints the init frame
// (the full answer set) and then one diff per server-side update until
// interrupted, the server ends the stream, or -frames are printed.
func cmdSubscribe(args []string) error {
	fs := flag.NewFlagSet("subscribe", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "cqapproxd base URL")
	src := fs.String("q", "", "query in rule notation")
	className := fs.String("class", "", "subscribe to the query's C-approximation instead (e.g. TW1, AC)")
	dbName := fs.String("db", "", "registered database name on the server (POST /v1/db)")
	frames := fs.Int("frames", 0, "exit after this many frames, counting the init frame (0 = until interrupted)")
	timeout := fs.Duration("timeout", 0, "deadline for the initial evaluation (0 = server default; the stream itself has none)")
	jsonOut := fs.Bool("json", false, "machine-readable output (raw api.DiffFrame NDJSON lines)")
	fs.Parse(args)
	if *dbName == "" {
		return fmt.Errorf("subscribe requires -db (a name registered on the server via POST /v1/db)")
	}
	req := api.SubscribeRequest{
		Query: *src, DB: *dbName,
		TimeoutMS: timeout.Milliseconds(),
	}
	if *className != "" {
		req.Class = *className
	} else {
		req.Exact = true
	}
	c := client.New(*addr)
	seq, errf := c.Subscribe(context.Background(), req)
	n := 0
	for f := range seq {
		if *jsonOut {
			if err := emitJSON(f); err != nil {
				return err
			}
		} else {
			printFrame(f)
		}
		n++
		if *frames > 0 && n >= *frames {
			break
		}
	}
	if err := errf(); err != nil {
		return fmt.Errorf("subscription ended after %d frames: %w", n, err)
	}
	return nil
}

// printFrame renders one diff frame for humans: a header line saying
// what kind of frame it is, then +tuple/-tuple lines.
func printFrame(f api.DiffFrame) {
	switch {
	case f.Init:
		fmt.Printf("# v%d init (%d answers)\n", f.Version, len(f.Added))
	case f.Resync:
		fmt.Printf("# v%d resync (%d answers; updates were dropped)\n", f.Version, len(f.Added))
	case f.Fallback:
		fmt.Printf("# v%d +%d -%d (fallback: %s)\n", f.Version, len(f.Added), len(f.Removed), f.Reason)
	default:
		fmt.Printf("# v%d +%d -%d\n", f.Version, len(f.Added), len(f.Removed))
	}
	for _, t := range f.Removed {
		fmt.Printf("- %v\n", t)
	}
	for _, t := range f.Added {
		fmt.Printf("+ %v\n", t)
	}
}

// printAnswers renders an answer set the way eval always has: one
// tuple per line plus a count, or a bare boolean for Boolean queries.
// jsonOut instead emits the server's wire shapes (api.EvalResponse /
// api.EvalBoolResponse).
func printAnswers(q *cqapprox.Query, ans cqapprox.Answers, jsonOut bool) error {
	if q.IsBoolean() {
		if jsonOut {
			return emitJSON(api.EvalBoolResponse{Result: len(ans) > 0})
		}
		fmt.Println(len(ans) > 0)
		return nil
	}
	if jsonOut {
		return emitJSON(api.EvalResponse{Answers: api.FromAnswers(ans), Count: len(ans)})
	}
	for _, t := range ans {
		fmt.Println(t)
	}
	fmt.Printf("(%d answers)\n", len(ans))
	return nil
}

// LoadDB reads a database file: one fact per line, relation name
// followed by integer arguments, '#' comments allowed.
func LoadDB(path string) (*cqapprox.Structure, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	db := cqapprox.NewStructure()
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("%s:%d: want relation plus arguments", path, lineNo)
		}
		args := make([]int, len(fields)-1)
		for i, fstr := range fields[1:] {
			v, err := strconv.Atoi(fstr)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad argument %q", path, lineNo, fstr)
			}
			args[i] = v
		}
		db.Add(fields[0], args...)
	}
	return db, sc.Err()
}
