// Command cqapproxd serves conjunctive-query approximation over HTTP:
// a cqapprox.Engine behind the /v1 API of internal/server. The
// NP-hard prepare work amortizes across all clients through the
// engine's LRU cache; each request's evaluation side is polynomial
// (O(|D|·|Q'|) for acyclic approximations), which is what makes
// per-request evaluation safe to expose as a service.
//
//	cqapproxd -addr :8080 -cache-capacity 1024 \
//	          -max-inflight-prepare 4 -max-inflight-eval 64 \
//	          -max-parallelism 8 \
//	          -default-timeout 30s -max-timeout 2m
//
// Concurrency limits default from the host's GOMAXPROCS: the prepare
// pool to max(2, GOMAXPROCS/2), the eval pool to 8×GOMAXPROCS, and the
// per-request parallel-evaluation cap (clamping the "parallelism"
// field of eval/stream requests) to GOMAXPROCS. GET /v1/stats reports
// the effective values under "server".
//
// Endpoints: POST /v1/prepare, /v1/explain (structured EXPLAIN of a
// plan), /v1/db (register a named database snapshot with persistent
// shared indexes, or apply a delta to it; eval requests may then pass
// "db" instead of shipping the data), /v1/eval, /v1/eval/bool,
// /v1/count, /v1/stream (NDJSON), /v1/subscribe (NDJSON diff frames
// pushed as the named database changes); GET /v1/stats and /debug/vars
// (expvar, including the same counters under "cqapproxd").
// SIGINT/SIGTERM end live subscriptions and drain in-flight requests
// for up to -grace before exiting.
//
// Live subscriptions: -subscriber-queue bounds each watcher's
// diff-frame queue, -slow-consumer-policy picks what happens when a
// watcher cannot keep up (resync pushes a fresh full answer set,
// disconnect ends the stream with a terminal slow_consumer error),
// and -coalesce-window batches update bursts into one frame.
//
// Observability: -log-requests emits one structured JSON line per
// request; -slow-query-ms upgrades slow requests to warnings carrying
// the execution trace when the request ran with "trace":true;
// -debug-addr serves net/http/pprof and /debug/vars on a second
// (normally loopback-only) listener.
//
// Clustering: -peers lists every node's base URL (identical order on
// every node) and -shard-id says which entry is this node. Databases
// registered on any node are then sharded across the cluster — small
// relations replicated (-replicate-below), large ones tuple-partitioned
// by consistent hash — and eligible eval/bool/count requests fan out to
// all shards and merge, byte-identical to single-node answers. See
// DESIGN.md §Cluster & sharding.
//
//	cqapproxd -addr :8080 -shard-id 0 \
//	          -peers http://10.0.0.1:8080,http://10.0.0.2:8080,http://10.0.0.3:8080
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // profiling handlers on the -debug-addr listener
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cqapprox"
	"cqapprox/internal/cluster"
	"cqapprox/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cqapproxd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		cacheCap   = flag.Int("cache-capacity", cqapprox.DefaultCacheCapacity, "prepared-query cache capacity (<= 0 unbounded)")
		maxPrepare = flag.Int("max-inflight-prepare", 0, "concurrent prepare bound (0 = max(2, GOMAXPROCS/2), < 0 unbounded)")
		maxEval    = flag.Int("max-inflight-eval", 0, "concurrent eval/stream bound (0 = 8*GOMAXPROCS, < 0 unbounded)")
		maxPar     = flag.Int("max-parallelism", 0, "cap on per-request evaluation workers (0 = GOMAXPROCS, < 0 serial only)")
		defTimeout = flag.Duration("default-timeout", 0, "deadline for requests without timeout_ms (0 default, < 0 none)")
		maxTimeout = flag.Duration("max-timeout", 0, "clamp on client timeout_ms (0 default, < 0 none)")
		grace      = flag.Duration("grace", 10*time.Second, "shutdown drain period")
		maxVars    = flag.Int("maxvars", 0, "default search variable budget (0 = library default)")
		extraAtoms = flag.Int("extras", 1, "default extra atoms for hypergraph-based classes")
		freshVars  = flag.Int("fresh", 0, "default fresh variables per extra atom")
		subQueue   = flag.Int("subscriber-queue", 0, "per-subscriber diff-frame queue depth (0 default, < 0 minimum)")
		slowPolicy = flag.String("slow-consumer-policy", "", "subscriber overflow policy: resync (default) or disconnect")
		coalesce   = flag.Duration("coalesce-window", 0, "batch database updates per subscriber for this long before pushing one coalesced frame (0 = push immediately)")
		logReqs    = flag.Bool("log-requests", false, "structured (JSON) log line per request on stderr")
		slowMS     = flag.Int64("slow-query-ms", 0, "warn-log requests at least this slow, with their trace when traced (0 off; implies -log-requests)")
		debugAddr  = flag.String("debug-addr", "", "second listener for net/http/pprof and /debug/vars (e.g. localhost:6060; empty = off)")
		peers      = flag.String("peers", "", "comma-separated base URLs of every cluster node, this one included, in identical order cluster-wide (empty = single node)")
		shardID    = flag.Int("shard-id", 0, "this node's index into -peers")
		repBelow   = flag.Int("replicate-below", 0, "replicate relations with fewer facts than this to every shard instead of partitioning (0 = default 1024, < 0 partition everything)")
	)
	flag.Parse()

	eng := cqapprox.NewEngine(
		cqapprox.WithCacheCapacity(*cacheCap),
		cqapprox.WithOptions(cqapprox.Options{
			MaxVars:       *maxVars,
			MaxExtraAtoms: *extraAtoms,
			FreshVars:     *freshVars,
		}.WithDefaults()),
	)
	switch *slowPolicy {
	case "", server.SlowConsumerResync, server.SlowConsumerDisconnect:
	default:
		return fmt.Errorf("-slow-consumer-policy must be %q or %q", server.SlowConsumerResync, server.SlowConsumerDisconnect)
	}
	clusterCfg := cluster.Config{Self: *shardID, ReplicateBelow: *repBelow}
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			clusterCfg.Peers = append(clusterCfg.Peers, strings.TrimSpace(p))
		}
	}
	if err := clusterCfg.Validate(); err != nil {
		return err
	}
	cfg := server.Config{
		MaxInflightPrepare: *maxPrepare,
		MaxInflightEval:    *maxEval,
		MaxParallelism:     *maxPar,
		DefaultTimeout:     *defTimeout,
		MaxTimeout:         *maxTimeout,
		SubscriberQueue:    *subQueue,
		SlowConsumerPolicy: *slowPolicy,
		CoalesceWindow:     *coalesce,
		Cluster:            clusterCfg,
	}
	if *logReqs || *slowMS > 0 {
		cfg.Logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
		cfg.SlowQuery = time.Duration(*slowMS) * time.Millisecond
	}
	srv := server.New(eng, cfg)

	// The /v1/stats payload and raw counters, via the standard expvar
	// surface (alongside Go runtime vars at /debug/vars).
	expvar.Publish("cqapproxd", srv.MetricsVars())
	expvar.Publish("cqapproxd.stats", expvar.Func(func() any { return srv.Stats() }))

	mux := http.NewServeMux()
	mux.Handle("/v1/", srv.Handler())
	mux.Handle("GET /debug/vars", expvar.Handler())

	hs := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// The optional debug listener: net/http/pprof and expvar both
	// register on http.DefaultServeMux at import time, so serving the
	// default mux on a second (normally loopback-only) address exposes
	// /debug/pprof/* and /debug/vars without putting profiling on the
	// service port.
	if *debugAddr != "" {
		go func() {
			dbg := &http.Server{Addr: *debugAddr, Handler: http.DefaultServeMux, ReadHeaderTimeout: 10 * time.Second}
			log.Printf("cqapproxd debug listener (pprof, expvar) on %s", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("cqapproxd debug listener: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		if clusterCfg.Enabled() {
			log.Printf("cqapproxd listening on %s (cache capacity %d, cluster shard %d/%d)",
				*addr, *cacheCap, *shardID, len(clusterCfg.Peers))
		} else {
			log.Printf("cqapproxd listening on %s (cache capacity %d)", *addr, *cacheCap)
		}
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err // bind failure etc.
	case <-ctx.Done():
	}
	log.Printf("cqapproxd draining (grace %v)", *grace)
	srv.Drain() // end live /v1/subscribe streams so Shutdown can complete
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	s := eng.CacheStats()
	log.Printf("cqapproxd stopped (cache: %d hits, %d misses, %d entries)", s.Hits, s.Misses, s.Entries)
	return nil
}
