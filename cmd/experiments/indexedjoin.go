package main

import (
	"context"
	"fmt"
	"os"
	"testing"
	"time"

	"cqapprox"
	"cqapprox/internal/benchfmt"
	"cqapprox/internal/eval"
	"cqapprox/internal/workload"
)

// benchOut, when non-empty, is the BENCH_*.json file expIndexedJoin
// merges its measurements into (set by the -bench-out flag).
var benchOut string

// expIndexedJoin is experiment E19: the indexed join runtime. Every
// E19 workload (chain/star/cycle over growing social graphs) is
// prepared once and then evaluated warm two ways — through the indexed
// runtime PreparedQuery.Eval uses, and through the string-keyed
// reference pipeline it replaced (Plan.EvalBaseline) — asserting equal
// answers and reporting the speedup. The chain workload must show the
// ≥3× speedup PR 3 claims. With -bench-out the indexed numbers are
// written into the benchmark baseline under the same names
// BenchmarkIndexedJoin produces, so the CI regression gate and this
// table stay one dataset.
func expIndexedJoin() error {
	ctx := context.Background()
	engine := cqapprox.NewEngine()
	var report *benchfmt.Report
	if benchOut != "" {
		var err error
		report, err = benchfmt.Load(benchOut)
		if os.IsNotExist(err) {
			report, err = &benchfmt.Report{Benchmarks: map[string]benchfmt.Entry{}}, nil
		}
		if err != nil {
			// A malformed baseline must not be silently replaced with an
			// E19-only file: the E17/E18 entries are not regenerable here.
			return fmt.Errorf("loading %s: %w", benchOut, err)
		}
	}
	fmt.Printf("%-8s %8s %12s %14s %9s\n", "query", "|V|", "indexed", "string-key", "speedup")
	chainSpeedup := 0.0
	for _, c := range workload.EvalBenchSuite() {
		var (
			p   *cqapprox.PreparedQuery
			err error
		)
		if c.Exact {
			p, err = engine.PrepareExact(ctx, c.Query)
		} else {
			p, err = engine.Prepare(ctx, c.Query, cqapprox.TW(1))
		}
		if err != nil {
			return err
		}
		// The baseline evaluates the same (possibly approximated) query
		// the prepared plan runs, through the pre-PR string-key pipeline.
		base := eval.NewPlan(p.Approx())
		for _, n := range c.Sizes {
			db := workload.EvalBenchDB(n)
			want, err := p.Eval(ctx, db)
			if err != nil {
				return err
			}
			got, err := base.EvalBaseline(ctx, db)
			if err != nil {
				return err
			}
			if len(got) != len(want) {
				return fmt.Errorf("%s/N%d: indexed %d answers, reference %d", c.Name, n, len(want), len(got))
			}
			idx := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := p.Eval(ctx, db); err != nil {
						b.Fatal(err)
					}
				}
			})
			ref := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := base.EvalBaseline(ctx, db); err != nil {
						b.Fatal(err)
					}
				}
			})
			speedup := float64(ref.NsPerOp()) / float64(idx.NsPerOp())
			fmt.Printf("%-8s %8d %12s %14s %8.2fx\n", c.Name, n,
				time.Duration(idx.NsPerOp()).Round(time.Microsecond),
				time.Duration(ref.NsPerOp()).Round(time.Microsecond), speedup)
			if c.Name == "chain6" && n == c.Sizes[len(c.Sizes)-1] {
				chainSpeedup = speedup
			}
			if report != nil {
				name := fmt.Sprintf("BenchmarkIndexedJoin/%s/N%d", c.Name, n)
				report.Benchmarks[name] = benchfmt.Entry{NsPerOp: float64(idx.NsPerOp())}
			}
		}
	}
	if chainSpeedup < 3 {
		return fmt.Errorf("chain workload speedup %.2fx, want ≥3x over the string-key baseline", chainSpeedup)
	}
	fmt.Printf("warm Eval runs ≥3x faster than the string-key baseline on the chain workload (%.1fx)\n", chainSpeedup)
	if report != nil {
		if err := report.Save(benchOut); err != nil {
			return err
		}
		fmt.Printf("wrote indexed-runtime baselines to %s\n", benchOut)
	}
	return nil
}
