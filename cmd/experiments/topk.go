package main

import (
	"context"
	"fmt"
	"os"
	"testing"
	"time"

	"cqapprox"
	"cqapprox/internal/benchfmt"
	"cqapprox/internal/workload"
)

// expTopK is experiment E23: ranked top-k enumeration. The lex-connex
// full-chain query at N=3000 materializes hundreds of thousands of
// answers; asking for the top 10 of the head order streams them out of
// the reduced forest with early termination instead. The experiment
// asserts the ranked prefix is byte-identical to the first 10 of the
// fully evaluated (canonically sorted) answer set, that warm ranked
// top-10 beats warm eval+sort+truncate by ≥10×, and that an
// untractable key (the projected path, the paper's canonical
// non-free-connex shape) falls back with identical ordering semantics.
// With -bench-out the ranked numbers are merged into the baseline
// under the BenchmarkTopK names.
func expTopK() error {
	const (
		n = 3000
		k = 10
	)
	ctx := context.Background()
	engine := cqapprox.NewEngine()
	var report *benchfmt.Report
	if benchOut != "" {
		var err error
		report, err = benchfmt.Load(benchOut)
		if os.IsNotExist(err) {
			report, err = &benchfmt.Report{Benchmarks: map[string]benchfmt.Entry{}}, nil
		}
		if err != nil {
			return fmt.Errorf("loading %s: %w", benchOut, err)
		}
	}
	db, _, err := engine.RegisterDB("e23", workload.EvalBenchDB(n))
	if err != nil {
		return err
	}

	q := workload.FullChainQuery(3)
	p, err := engine.PrepareExact(ctx, q)
	if err != nil {
		return err
	}
	if ex := p.Explain(); ex.Ranked != "connex" {
		return fmt.Errorf("full chain classified %q, want connex", ex.Ranked)
	}
	bound := p.Bind(db)
	order := append([]string{}, q.Head...)

	// Correctness first: the ranked prefix must be byte-identical to
	// the first k of the full canonically sorted answer set (the
	// sort-after-materialize oracle). The warming calls also charge the
	// snapshot index cache so the timings below compare warm paths.
	full, err := bound.Eval(ctx)
	if err != nil {
		return err
	}
	ranked, err := bound.Eval(ctx, cqapprox.WithOrder(order...), cqapprox.WithLimit(k))
	if err != nil {
		return err
	}
	if len(ranked) != k || len(full) < k {
		return fmt.Errorf("top-%d returned %d answers of %d", k, len(ranked), len(full))
	}
	for i := 0; i < k; i++ {
		if !ranked[i].Equal(full[i]) {
			return fmt.Errorf("ranked[%d] = %v, oracle %v", i, ranked[i], full[i])
		}
	}

	rres := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bound.Eval(ctx, cqapprox.WithOrder(order...), cqapprox.WithLimit(k)); err != nil {
				b.Fatal(err)
			}
		}
	})
	sres := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bound.Eval(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	speedup := float64(sres.NsPerOp()) / float64(rres.NsPerOp())
	fmt.Printf("%-12s %10d %12s %12s %8.1fx\n", q.Name, len(full),
		time.Duration(sres.NsPerOp()).Round(time.Microsecond),
		time.Duration(rres.NsPerOp()).Round(time.Microsecond), speedup)
	if speedup < 10 {
		return fmt.Errorf("ranked top-%d only %.1fx over eval+sort, want ≥10x", k, speedup)
	}

	// The fallback leg: the projected path admits no connex program for
	// the reversed key, so the same options run eval+sort+truncate —
	// with the identical ordered prefix contract.
	pf, err := engine.PrepareExact(ctx, cqapprox.MustParse("Q(x,z) :- E(x,y), E(y,z)"))
	if err != nil {
		return err
	}
	if ex := pf.Explain(); ex.Ranked != "fallback" {
		return fmt.Errorf("path projection classified %q, want fallback", ex.Ranked)
	}
	fb := pf.Bind(db)
	fbFull, err := fb.Eval(ctx, cqapprox.WithOrder("z", "x"))
	if err != nil {
		return err
	}
	fbTop, err := fb.Eval(ctx, cqapprox.WithOrder("z", "x"), cqapprox.WithLimit(k))
	if err != nil {
		return err
	}
	if len(fbTop) != k {
		return fmt.Errorf("fallback top-%d returned %d answers", k, len(fbTop))
	}
	for i := 0; i < k; i++ {
		if !fbTop[i].Equal(fbFull[i]) {
			return fmt.Errorf("fallback ranked[%d] = %v, want %v", i, fbTop[i], fbFull[i])
		}
	}
	st := pf.IndexStats()
	if st.RankFallbacks == 0 {
		return fmt.Errorf("fallback evaluations left no RankFallbacks trace: %+v", st)
	}
	fmt.Printf("top-%d byte-identical to sort-after-materialize; fallback path ordered identically (%d fallbacks recorded)\n",
		k, st.RankFallbacks)

	if report != nil {
		report.Benchmarks[fmt.Sprintf("BenchmarkTopK/Ranked/N%d", n)] = benchfmt.Entry{NsPerOp: float64(rres.NsPerOp())}
		report.Benchmarks[fmt.Sprintf("BenchmarkTopK/SortAll/N%d", n)] = benchfmt.Entry{NsPerOp: float64(sres.NsPerOp())}
		if err := report.Save(benchOut); err != nil {
			return err
		}
		fmt.Printf("wrote ranked baselines to %s\n", benchOut)
	}
	return nil
}
