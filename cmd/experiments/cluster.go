package main

import (
	"context"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"testing"
	"time"

	"cqapprox/api"
	"cqapprox/client"
	"cqapprox/internal/benchfmt"
	"cqapprox/internal/server"
	"cqapprox/internal/workload"
	"cqapprox/internal/workload/httpcluster"
	"cqapprox/internal/workload/httpdrive"
)

// expCluster is experiment E25: sharded scatter-gather evaluation.
// A 3-node in-process cluster and a 1-node control both register the
// cluster bench database (the fact relation E tuple-partitioned across
// the ring, the dimension relations replicated); every cluster-suite
// query is then evaluated by name on both, asserting byte-identical
// answers and equal exact counts — always, on any host. The warm
// throughput of the two arms is then measured under GOMAXPROCS
// concurrent requesters; hosts with at least four CPUs assert the
// 3-node arm sustains ≥2× the single-node throughput (the near-linear
// scaling claim), while smaller hosts (this container, CI shared
// runners) report the measured ratio but only assert correctness — one
// core cannot physically demonstrate multi-node parallelism. With
// -bench-out the scatter-gather latency is merged into the benchmark
// baseline under the BenchmarkClusterScatterGather name.
func expCluster() error {
	const dbNodes = 300
	ctx := context.Background()
	var report *benchfmt.Report
	if benchOut != "" {
		var err error
		report, err = benchfmt.Load(benchOut)
		if os.IsNotExist(err) {
			report, err = &benchfmt.Report{Benchmarks: map[string]benchfmt.Entry{}}, nil
		}
		if err != nil {
			return fmt.Errorf("loading %s: %w", benchOut, err)
		}
	}

	db := workload.ClusterBenchDB(dbNodes)
	base := server.Config{MaxInflightPrepare: 16, MaxInflightEval: 256}
	base.Cluster.ReplicateBelow = len(db.Tuples("R1")) + len(db.Tuples("R2")) + 1
	arms := []struct {
		name string
		n    int
		cl   *httpcluster.Cluster
	}{
		{"1-node", 1, nil},
		{"3-node", 3, nil},
	}
	for i := range arms {
		arms[i].cl = httpcluster.Start(arms[i].n, base)
		defer arms[i].cl.Close()
		if _, err := arms[i].cl.Clients()[0].RegisterDB(ctx, api.RegisterDBRequest{
			Name: "social", Database: httpdrive.WireDB(db),
		}); err != nil {
			return fmt.Errorf("%s register: %w", arms[i].name, err)
		}
	}
	coord := make([]*client.Client, len(arms))
	for i, a := range arms {
		coord[i] = a.cl.Clients()[0]
	}

	// Correctness: byte-identical answers and equal exact counts on
	// every cluster-suite query, asserted unconditionally.
	for _, q := range workload.ClusterQuerySuite() {
		req := api.EvalRequest{Query: q.String(), Class: "TW1", DB: "social"}
		want, err := coord[0].Eval(ctx, req)
		if err != nil {
			return fmt.Errorf("%s single-node eval: %w", q.Name, err)
		}
		got, err := coord[1].Eval(ctx, req)
		if err != nil {
			return fmt.Errorf("%s scatter eval: %w", q.Name, err)
		}
		if !reflect.DeepEqual(got.Answers, want.Answers) {
			return fmt.Errorf("%s: scatter answers diverge from single-node (%d vs %d)",
				q.Name, len(got.Answers), len(want.Answers))
		}
		cw, err := coord[0].Count(ctx, api.CountRequest{EvalRequest: req})
		if err != nil {
			return fmt.Errorf("%s single-node count: %w", q.Name, err)
		}
		cg, err := coord[1].Count(ctx, api.CountRequest{EvalRequest: req})
		if err != nil {
			return fmt.Errorf("%s cluster count: %w", q.Name, err)
		}
		if cg.Count != cw.Count {
			return fmt.Errorf("%s: cluster count %d, single-node %d", q.Name, cg.Count, cw.Count)
		}
	}
	cs := arms[1].cl.Servers[0].Stats().Cluster
	if cs == nil || cs.ScatterEvals == 0 {
		return fmt.Errorf("3-node coordinator recorded no scatter-gather evaluations: %+v", cs)
	}

	// Throughput: warm scatter evaluations of the fact query under
	// GOMAXPROCS concurrent requesters, per arm.
	req := api.EvalRequest{Query: workload.ClusterQuerySuite()[0].String(), Class: "TW1", DB: "social"}
	nsPerOp := make([]int64, len(arms))
	fmt.Printf("%-8s %10s %14s %14s\n", "arm", "shards", "latency", "throughput")
	for i := range arms {
		c := coord[i]
		if _, err := c.Eval(ctx, req); err != nil { // warm
			return err
		}
		res := testing.Benchmark(func(b *testing.B) {
			b.SetParallelism(1) // GOMAXPROCS goroutines
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := c.Eval(ctx, req); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
		nsPerOp[i] = res.NsPerOp()
		fmt.Printf("%-8s %10d %14s %12.0f/s\n", arms[i].name, arms[i].n,
			time.Duration(res.NsPerOp()).Round(time.Microsecond), 1e9/float64(res.NsPerOp()))
	}
	ratio := float64(nsPerOp[0]) / float64(nsPerOp[1])
	if cpus := runtime.NumCPU(); cpus >= 4 {
		if ratio < 2 {
			return fmt.Errorf("3-node throughput %.2fx single-node on %d CPUs, want ≥2x", ratio, cpus)
		}
		fmt.Printf("3-node scatter-gather sustains %.1fx single-node throughput on %d CPUs, answers byte-identical\n", ratio, cpus)
	} else {
		fmt.Printf("only %d CPU(s): scaling assertion skipped (measured %.2fx), answers byte-identical\n", cpus, ratio)
	}
	if report != nil {
		report.Benchmarks["BenchmarkClusterScatterGather"] =
			benchfmt.Entry{NsPerOp: float64(nsPerOp[1])}
		if err := report.Save(benchOut); err != nil {
			return err
		}
		fmt.Printf("wrote cluster scatter-gather baseline to %s\n", benchOut)
	}
	return nil
}
