package main

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"cqapprox"
	"cqapprox/internal/core"
	"cqapprox/internal/cq"
	"cqapprox/internal/digraph"
	"cqapprox/internal/eval"
	"cqapprox/internal/gadgets"
	"cqapprox/internal/hom"
	"cqapprox/internal/relstr"
	"cqapprox/internal/workload"
)

// expFigure1 reproduces the paper's Figure 1 as measured data: for
// every query in the suite and every class, approximations exist, their
// minimized sizes respect the paper's bounds (≤ |Q| joins for
// graph-based classes, polynomial for hypergraph-based), and the
// computation is single-exponential (wall-clock reported).
func expFigure1() error {
	// This experiment runs on the public Engine: each (query, class)
	// pair is prepared once — minimize → approximation search → plan —
	// and the second pass over the suite shows the prepared-query cache
	// answering without re-running any search.
	engine := cqapprox.NewEngine()
	ctx := context.Background()
	classes := []cqapprox.Class{cqapprox.TW(1), cqapprox.TW(2), cqapprox.AC(), cqapprox.HTW(2)}
	fmt.Printf("%-14s %-8s %8s %10s %10s %12s %12s\n",
		"query", "class", "#approx", "max joins", "Q joins", "prepare", "cached")
	for _, q := range workload.QuerySuite() {
		for _, c := range classes {
			start := time.Now()
			p, err := engine.Prepare(ctx, q, c)
			if err != nil {
				return err
			}
			elapsed := time.Since(start)
			apps := p.Approximations()
			maxJoins := 0
			for _, a := range apps {
				if a.NumJoins() > maxJoins {
					maxJoins = a.NumJoins()
				}
			}
			start = time.Now()
			if _, err := engine.Prepare(ctx, q, c); err != nil {
				return err
			}
			cached := time.Since(start)
			fmt.Printf("%-14s %-8s %8d %10d %10d %12s %12s\n",
				q.Name, c.Name(), len(apps), maxJoins, q.NumJoins(),
				elapsed.Round(time.Microsecond), cached.Round(time.Microsecond))
			if len(apps) == 0 {
				return fmt.Errorf("no %s-approximation for %v (existence violated)", c.Name(), q)
			}
		}
	}
	stats := engine.CacheStats()
	fmt.Printf("engine cache: %d searches run, %d served from cache\n", stats.Misses, stats.Hits)
	fmt.Println("existence: always (Cor 4.2/6.5); graph-based join counts ≤ |Q| (Thm 4.1)")
	return nil
}

// expProp44 verifies the exponential lower bound on the number of
// minimized acyclic approximations.
func expProp44() error {
	fmt.Printf("%4s %8s %8s %12s %10s\n", "n", "|vars|", "joins", "witnesses", "2^n")
	for n := 1; n <= 3; n++ {
		gn := gadgets.NewGn(n)
		labels := gadgets.AllLabels(n)
		graphs := map[string]*relstr.Structure{}
		for _, s := range labels {
			graphs[s] = gadgets.NewGns(n, s)
		}
		count := 0
		for _, s := range labels {
			gs := graphs[s]
			if !digraph.IsForestLike(gs) || !hom.Exists(gn.G, gs, nil) {
				continue
			}
			incomparable := true
			for _, u := range labels {
				if u != s && digraph.ExistsHomLeveled(gs, graphs[u]) {
					incomparable = false
					break
				}
			}
			if incomparable {
				count++
			}
		}
		fmt.Printf("%4d %8d %8d %12d %10d\n", n, gn.G.DomainSize(), gn.G.NumFacts()-1, count, 1<<n)
		if count != 1<<n {
			return fmt.Errorf("n=%d: %d witnesses, want %d", n, count, 1<<n)
		}
	}
	fmt.Println("each witness is an acyclic core ⊆ Q_n, pairwise incomparable (Claims 4.6–4.9)")
	return nil
}

// expTrichotomy classifies Boolean graph queries and cross-checks the
// computed acyclic approximations against Theorem 5.1.
func expTrichotomy() error {
	cases := []string{
		"Q() :- E(x,y), E(y,z), E(z,x)",
		"Q() :- E(a,b), E(b,c), E(c,d), E(d,e), E(e,a)",
		"Q() :- E(x,y), E(y,z), E(z,u), E(x,u)",
		"Q() :- E(a,b), E(c,b), E(c,d), E(a,d), E(d,e)",
		"Q() :- E(a,b), E(b,c), E(c,d), E(a,d)",
	}
	fmt.Printf("%-42s %-22s %-10s %s\n", "query", "kind", "#approx", "approximation")
	for _, src := range cases {
		q := cq.MustParse(src)
		kind, err := core.ClassifyGraphTableau(q)
		if err != nil {
			return err
		}
		apps, err := core.Approximations(q, core.TW(1), core.DefaultOptions())
		if err != nil {
			return err
		}
		desc := "nontrivial, 2-cycle-free"
		switch kind {
		case core.NonBipartite:
			if len(apps) != 1 || !core.IsTrivialQuery(apps[0]) {
				return fmt.Errorf("%s: trichotomy violated", src)
			}
			desc = "Q_trivial only"
		case core.BipartiteUnbalanced:
			if len(apps) != 1 || !hom.Equivalent(apps[0], core.TrivialBipartite()) {
				return fmt.Errorf("%s: trichotomy violated", src)
			}
			desc = "K2↔ only"
		case core.BipartiteBalanced:
			for _, a := range apps {
				if core.IsTrivialQuery(a) {
					return fmt.Errorf("%s: trivial approximation in balanced case", src)
				}
			}
		}
		fmt.Printf("%-42s %-22s %-10d %s\n", src, kind, len(apps), desc)
	}
	return nil
}

// expJoins verifies Corollary 5.3 on a suite of cyclic Boolean graph
// queries.
func expJoins() error {
	fmt.Printf("%-46s %8s %14s\n", "query", "Q joins", "approx joins")
	for _, src := range []string{
		"Q() :- E(x,y), E(y,z), E(z,x)",
		"Q() :- E(x,y), E(y,z), E(z,u), E(u,x)",
		"Q() :- E(x,y), E(y,z), E(z,u), E(x,u)",
		"Q() :- E(a,b), E(b,c), E(c,d), E(d,e), E(e,a)",
		"Q() :- E(a,b), E(b,c), E(c,a), E(c,d)",
	} {
		q := cq.MustParse(src)
		cmp, err := core.CompareJoins(q, core.TW(1), core.DefaultOptions())
		if err != nil {
			return err
		}
		for i, j := range cmp.Joins {
			if j >= cmp.QueryJoins {
				return fmt.Errorf("%s: approximation %v does not reduce joins", src, cmp.Approx[i])
			}
		}
		fmt.Printf("%-46s %8d %14v\n", src, cmp.QueryJoins, cmp.Joins)
	}
	fmt.Println("all minimized acyclic approximations have strictly fewer joins (Cor 5.3)")
	return nil
}

// expDichotomy cross-checks the (k+1)-colorability dichotomy of
// Theorems 5.8 and 5.10 against the computed approximations.
func expDichotomy() error {
	cases := []string{
		"Q(x,y) :- E(x,y), E(y,z), E(z,x)",
		"Q(x) :- E(x,y), E(y,z), E(z,u), E(u,x)",
		"Q() :- E(x,y), E(y,z), E(z,x)",
	}
	fmt.Printf("%-40s %4s %12s %12s %8s\n", "query", "k", "colorable", "loop-free", "agree")
	for _, src := range cases {
		q := cq.MustParse(src)
		for _, k := range []int{1, 2} {
			colorable, err := core.HasLoopFreeTWkApproximation(q, k)
			if err != nil {
				return err
			}
			apps, err := core.Approximations(q, core.TW(k), core.DefaultOptions())
			if err != nil {
				return err
			}
			loopFree := false
			for _, a := range apps {
				has := false
				for _, at := range a.Atoms {
					if at.Args[0] == at.Args[1] {
						has = true
					}
				}
				if !has {
					loopFree = true
				}
			}
			agree := colorable == loopFree
			fmt.Printf("%-40s %4d %12v %12v %8v\n", src, k, colorable, loopFree, agree)
			if !agree {
				return fmt.Errorf("%s, k=%d: dichotomy violated", src, k)
			}
		}
	}
	return nil
}

// expProp59 verifies the equal-join-count phenomenon for the paper's
// non-Boolean 4-cycle query.
func expProp59() error {
	q := cq.MustParse("Q(x1,x2,x3) :- E(x1,x2), E(x2,x3), E(x3,x4), E(x4,x1)")
	cmp, err := core.CompareJoins(q, core.TW(1), core.DefaultOptions())
	if err != nil {
		return err
	}
	fmt.Printf("query: %v (%d joins, minimized)\n", q, cmp.QueryJoins)
	for i, a := range cmp.Approx {
		fmt.Printf("  approx: %v (%d joins)\n", a, cmp.Joins[i])
		if cmp.Joins[i] != cmp.QueryJoins {
			return fmt.Errorf("join count %d ≠ %d", cmp.Joins[i], cmp.QueryJoins)
		}
	}
	fmt.Println("all minimized acyclic approximations have exactly as many joins as Q (Prop 5.9)")
	return nil
}

// expEx66 reproduces Example 6.6 in full.
func expEx66() error {
	q := cq.MustParse("Q() :- R(x1,x2,x3), R(x3,x4,x5), R(x5,x6,x1)")
	apps, err := core.Approximations(q, core.AC(), core.DefaultOptions())
	if err != nil {
		return err
	}
	fmt.Printf("query: %v (%d joins)\n", q, q.NumJoins())
	for _, a := range apps {
		fmt.Printf("  acyclic approximation: %v (%d joins)\n", a, a.NumJoins())
	}
	if len(apps) != 3 {
		return fmt.Errorf("%d approximations, want 3", len(apps))
	}
	fmt.Println("exactly 3 non-equivalent acyclic approximations: fewer/equal/more joins (Ex 6.6)")
	return nil
}

// expExample57 verifies the unique P4 approximation of the intro's Q2.
func expExample57() error {
	g := gadgets.Example57()
	q := cq.FromTableau(g, nil, nil)
	apps, err := core.Approximations(q, core.TW(1), core.Options{})
	if err != nil {
		return err
	}
	p4 := cq.MustParse("P() :- E(a,b), E(b,c), E(c,d), E(d,e)")
	fmt.Printf("query: %v\n", q)
	for _, a := range apps {
		fmt.Printf("  acyclic approximation: %v (≡ P4: %v)\n", a, hom.Equivalent(a, p4))
	}
	if len(apps) != 1 || !hom.Equivalent(apps[0], p4) {
		return fmt.Errorf("expected the unique approximation P4")
	}
	return nil
}

// expSpeedup is the introduction's motivating experiment: exact
// |D|^O(|Q|) evaluation versus the approximation's O(|D|·|Q'|).
func expSpeedup() error {
	q := cq.MustParse("Q(x) :- E(x,y), E(y,z), E(z,w), E(w,x)")
	a, err := core.Approximate(q, core.TW(1), core.DefaultOptions())
	if err != nil {
		return err
	}
	fmt.Printf("query %v, approximation %v\n", q, a)
	fmt.Printf("%8s %10s %12s %12s %8s %8s\n", "|V|", "|D|", "exact", "approx", "speedup", "recall")
	var prevRatio float64
	for _, n := range []int{200, 1000, 3000} {
		rng := rand.New(rand.NewSource(42))
		db := workload.RandomSocial(rng, n, 6, 0.3)
		t0 := time.Now()
		exact := eval.Naive(q, db)
		te := time.Since(t0)
		t0 = time.Now()
		approx := eval.Eval(a, db)
		ta := time.Since(t0)
		recall := 1.0
		if len(exact) > 0 {
			recall = float64(len(approx)) / float64(len(exact))
		}
		ratio := float64(te) / float64(ta)
		fmt.Printf("%8d %10d %12s %12s %7.1fx %7.1f%%\n",
			n, db.NumFacts(), te.Round(time.Microsecond), ta.Round(time.Microsecond),
			ratio, 100*recall)
		if ratio < prevRatio*0.5 {
			return fmt.Errorf("speedup ratio should grow with |D|")
		}
		prevRatio = ratio
	}
	fmt.Println("the exact/approx ratio grows with |D| — the shape of §1's complexity gap")
	return nil
}

// expProp55 demonstrates the combined-complexity blowup underlying
// Prop 5.5: evaluating Boolean CQs with bipartite+balanced tableaux is
// NP-complete (even against oriented-tree targets, Hell–Nešetřil), so
// the exact check grows sharply with |Q|, while acyclic queries of the
// same size evaluate in O(|D|·|Q|) via Yannakakis. Queries are random
// balanced digraphs; the database is a random oriented tree — the
// hard target family from the paper's proof.
func expProp55() error {
	rng := rand.New(rand.NewSource(11))
	db := orientedTreeDB(rng, 80)
	fmt.Printf("%6s %22s %8s %14s %14s\n", "|Q|", "kind", "holds", "exact (cyclic)", "acyclic O(D·Q)")
	for _, n := range []int{8, 12, 16} {
		g := randomBalancedDigraph(rng, n)
		q := cq.FromTableau(g, nil, nil)
		kind, err := core.ClassifyGraphTableau(q)
		if err != nil {
			return err
		}
		t0 := time.Now()
		holds := eval.NaiveBool(q, db)
		te := time.Since(t0)
		// Acyclic comparison query of the same size: a spanning
		// substructure of g (tractable class, same |Q|).
		span := spanningForest(g)
		aq := cq.FromTableau(span, nil, nil)
		t0 = time.Now()
		if _, err := eval.YannakakisBool(aq, db); err != nil {
			return err
		}
		ta := time.Since(t0)
		fmt.Printf("%6d %22s %8v %14s %14s\n",
			n, kind, holds, te.Round(time.Microsecond), ta.Round(time.Microsecond))
	}
	fmt.Println("bipartite+balanced evaluation is NP-complete (Prop 5.5): exact cost")
	fmt.Println("grows with |Q|; same-size acyclic queries stay in O(|D|·|Q|)")
	return nil
}

// orientedTreeDB builds a random oriented tree on n nodes.
func orientedTreeDB(rng *rand.Rand, n int) *relstr.Structure {
	db := digraph.New()
	for v := 1; v < n; v++ {
		parent := rng.Intn(v)
		if rng.Intn(2) == 0 {
			digraph.AddEdge(db, parent, v)
		} else {
			digraph.AddEdge(db, v, parent)
		}
	}
	return db
}

// randomBalancedDigraph builds a random connected balanced digraph on n
// nodes: nodes get random levels, edges go from level l to l+1, and
// extra cross edges make it cyclic (every cycle stays balanced by
// construction).
func randomBalancedDigraph(rng *rand.Rand, n int) *relstr.Structure {
	g := digraph.New()
	levels := make([]int, n)
	for v := 1; v < n; v++ {
		// Attach to a previous node one level up or down.
		p := rng.Intn(v)
		if rng.Intn(2) == 0 {
			levels[v] = levels[p] + 1
			digraph.AddEdge(g, p, v)
		} else {
			levels[v] = levels[p] - 1
			digraph.AddEdge(g, v, p)
		}
	}
	// Cross edges between existing consecutive levels (cycle-creating).
	for i := 0; i < n/2; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if levels[b] == levels[a]+1 {
			digraph.AddEdge(g, a, b)
		}
	}
	return g
}

// spanningForest drops cycle-closing edges of g, keeping one edge per
// newly connected pair (an acyclic substructure of the same size
// class).
func spanningForest(g *relstr.Structure) *relstr.Structure {
	out := digraph.New()
	parent := map[int]int{}
	var find func(x int) int
	find = func(x int) int {
		if _, ok := parent[x]; !ok {
			parent[x] = x
		}
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range digraph.Edges(g) {
		ra, rb := find(e[0]), find(e[1])
		if ra != rb {
			parent[ra] = rb
			digraph.AddEdge(out, e[0], e[1])
		}
	}
	return out
}

// expDPReduction verifies the Theorem 4.12 machinery and times the
// exact-homomorphism checks at its heart.
func expDPReduction() error {
	q := gadgets.NewQStar()
	fmt.Printf("%-28s %8s %10s\n", "check", "result", "time")
	for i := 1; i <= 4; i++ {
		ti := gadgets.Ti(i)
		t0 := time.Now()
		allowed, ok := digraph.LevelRestriction(q.G, ti.G)
		if !ok {
			return fmt.Errorf("level restriction failed for T%d", i)
		}
		n := hom.CountRestricted(q.G, ti.G, nil, allowed)
		el := time.Since(t0)
		fmt.Printf("Q* → T%d unique hom            %5v %10s\n", i, n == 1, el.Round(time.Microsecond))
		if n != 1 {
			return fmt.Errorf("Q* → T%d has %d homs, want 1 (Claim 8.3)", i, n)
		}
	}
	bt := gadgets.NewBigT()
	t0 := time.Now()
	ch := gadgets.NewExtChooser21()
	lr, _ := digraph.LevelRestriction(ch.G, bt.G)
	pairs := 0
	for i := 1; i <= 4; i++ {
		for j := 1; j <= 4; j++ {
			pre := map[int]int{ch.A: bt.TNode[i], ch.B: bt.TNode[j]}
			if hom.ExistsRestricted(ch.G, bt.G, pre, lr) {
				pairs++
			}
		}
	}
	el := time.Since(t0)
	fmt.Printf("S̃21 chooser pairs = %d (want 6)   %10s\n", pairs, el.Round(time.Microsecond))
	if pairs != 6 {
		return fmt.Errorf("extended chooser realises %d pairs, want 6 (Claim 8.9)", pairs)
	}
	fmt.Println("the reduction's gadgets behave exactly as the appendix claims")
	return nil
}

// expProp411 runs the oracle-based equivalence test on queries with
// known ground truth.
func expProp411() error {
	cases := []struct {
		src  string
		k    int
		want bool
	}{
		{"Q() :- E(x,y), E(y,z), E(z,x)", 1, false},
		{"Q() :- E(x,y), E(y,z), E(z,x)", 2, true},
		{"Q() :- E(x,y), E(x,z)", 1, true},
		{"Q() :- E(x,y), E(y,z), E(z,u), E(u,x)", 1, false},
		{"Q(x) :- E(x,y), E(y,x), E(x,z)", 1, true},
	}
	fmt.Printf("%-44s %4s %8s %8s\n", "query", "k", "oracle", "truth")
	for _, c := range cases {
		q := cq.MustParse(c.src)
		got, err := core.EquivalentToClass(q, core.TW(c.k), core.DefaultOptions())
		if err != nil {
			return err
		}
		fmt.Printf("%-44s %4d %8v %8v\n", c.src, c.k, got, c.want)
		if got != c.want {
			return fmt.Errorf("%s: oracle says %v, truth %v", c.src, got, c.want)
		}
	}
	fmt.Println("Q ⊆ A(Q) ⟺ Q is TW(k)-equivalent (Prop 4.11)")
	return nil
}

// expTight verifies the tight-approximation family of Prop 5.6.
func expTight() error {
	fmt.Printf("%4s %14s %14s %16s\n", "k", "G_k → P_{k+1}", "P_{k+1} ↛ G_k", "approx verified")
	for k := 3; k <= 5; k++ {
		gk := gadgets.NewGk(k)
		pk1 := digraph.DirectedPath(k + 1)
		fwd := hom.Exists(gk, pk1, nil)
		bwd := hom.Exists(pk1, gk, nil)
		verified := "-"
		if k == 3 {
			q := cq.FromTableau(gk, nil, nil)
			p4 := cq.MustParse("P() :- E(a,b), E(b,c), E(c,d), E(d,e)")
			ok, err := core.IsApproximation(q, p4, core.TW(1), core.Options{})
			if err != nil {
				return err
			}
			verified = fmt.Sprint(ok)
			if !ok {
				return fmt.Errorf("P4 not an approximation of G_3")
			}
		}
		fmt.Printf("%4d %14v %14v %16s\n", k, fwd, !bwd, verified)
		if !fwd || bwd {
			return fmt.Errorf("k=%d: gap endpoints wrong", k)
		}
	}
	fmt.Println("the path P_{k+1} tightly approximates G_k (Prop 5.6; exact check at k=3)")
	return nil
}

// expCor43 measures the single-exponential cost of computing
// approximations as the query grows.
func expCor43() error {
	fmt.Printf("%8s %8s %12s\n", "n vars", "#approx", "time")
	for n := 3; n <= 7; n++ {
		q := workload.CycleQuery(n)
		t0 := time.Now()
		apps, err := core.Approximations(q, core.TW(1), core.DefaultOptions())
		if err != nil {
			return err
		}
		el := time.Since(t0)
		fmt.Printf("%8d %8d %12s\n", n, len(apps), el.Round(time.Microsecond))
	}
	fmt.Println("cost grows with Bell(n) ~ 2^{O(n log n)} — the single-exponential bound of Cor 4.3")
	return nil
}

// expHigherArity verifies the §5.3 constructions.
func expHigherArity() error {
	// Prop 5.15: the almost-triangle.
	q := cq.MustParse("Q() :- R(x1,x2,x3), R(x2,x1,x4), R(x4,x3,x1)")
	strong := cq.MustParse("Q'() :- R(x,y,y), R(y,x,y), R(y,y,x)")
	ok, err := core.IsApproximation(q, strong, core.TW(1), core.DefaultOptions())
	if err != nil {
		return err
	}
	fmt.Printf("almost-triangle %v\n", q)
	fmt.Printf("  strong TW(1) approximation %v: %v (same joins: %v)\n",
		strong, ok, hom.Minimize(q).NumJoins() == hom.Minimize(strong).NumJoins())
	if !ok {
		return fmt.Errorf("Prop 5.15 approximation rejected")
	}
	// Contrast with graphs: a Boolean graph query of maximum treewidth
	// has only the trivial strong approximation.
	tri := cq.MustParse("Q() :- E(x,y), E(y,z), E(z,x)")
	apps, err := core.Approximations(tri, core.TW(1), core.DefaultOptions())
	if err != nil {
		return err
	}
	fmt.Printf("graph contrast: C3 has %d TW(1)-approximation(s), trivial: %v\n",
		len(apps), core.IsTrivialQuery(apps[0]))
	return nil
}

// expCor65 records the sizes of hypergraph-based approximations against
// the polynomial bound of Claim 6.2 / Cor 6.5.
func expCor65() error {
	fmt.Printf("%-10s %-8s %8s %10s %10s %12s\n", "query", "class", "#approx", "max vars", "bound", "time")
	for _, q := range []*cq.Query{
		workload.TernaryCycleQuery(3),
		cq.MustParse("Q() :- R(x,u,y), R(y,v,z), R(z,w,x)"),
	} {
		n := q.NumVars()
		m := 3                       // max arity
		bound := n + (m-1)*(m-1)*n*n // n + (m−1)²·n^{m−1}
		for _, c := range []core.Class{core.AC(), core.HTW(2)} {
			t0 := time.Now()
			apps, err := core.Approximations(q, c, core.DefaultOptions())
			if err != nil {
				return err
			}
			el := time.Since(t0)
			maxVars := 0
			for _, a := range apps {
				if a.NumVars() > maxVars {
					maxVars = a.NumVars()
				}
			}
			fmt.Printf("%-10s %-8s %8d %10d %10d %12s\n",
				q.Name, c.Name(), len(apps), maxVars, bound, el.Round(time.Microsecond))
		}
	}
	fmt.Println("approximation sizes stay within the polynomial bound of Claim 6.2")
	return nil
}
