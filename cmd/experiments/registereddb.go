package main

import (
	"context"
	"fmt"
	"os"
	"testing"
	"time"

	"cqapprox"
	"cqapprox/internal/benchfmt"
	"cqapprox/internal/workload"
)

// expRegisteredDB is experiment E20: the database snapshot API. Every
// E19 workload is prepared once and its database registered once; the
// warm evaluation then runs two ways — inline (PreparedQuery.Eval over
// the plain structure, re-indexing per call) and registered
// (BoundQuery.Eval over the snapshot's persistent shared indexes) —
// asserting equal answers, a ≥2× registered speedup on the chain and
// star workloads at the largest size, and the API's core property:
// zero index builds across repeated warm evaluations of a registered
// database. With -bench-out the registered numbers are merged into the
// benchmark baseline under the BenchmarkRegisteredDB names CI gates.
// equalAnswers compares two (sorted, deduplicated) answer sets
// element-wise.
func equalAnswers(a, b cqapprox.Answers) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

func expRegisteredDB() error {
	ctx := context.Background()
	engine := cqapprox.NewEngine()
	var report *benchfmt.Report
	if benchOut != "" {
		var err error
		report, err = benchfmt.Load(benchOut)
		if os.IsNotExist(err) {
			report, err = &benchfmt.Report{Benchmarks: map[string]benchfmt.Entry{}}, nil
		}
		if err != nil {
			return fmt.Errorf("loading %s: %w", benchOut, err)
		}
	}
	dbs := map[int]*cqapprox.Database{}
	structures := map[int]*cqapprox.Structure{}
	fmt.Printf("%-8s %8s %12s %12s %9s %12s\n", "query", "|V|", "inline", "registered", "speedup", "warm builds")
	speedups := map[string]float64{}
	for _, c := range workload.EvalBenchSuite() {
		var (
			p   *cqapprox.PreparedQuery
			err error
		)
		if c.Exact {
			p, err = engine.PrepareExact(ctx, c.Query)
		} else {
			p, err = engine.Prepare(ctx, c.Query, cqapprox.TW(1))
		}
		if err != nil {
			return err
		}
		for _, n := range c.Sizes {
			if dbs[n] == nil {
				structures[n] = workload.EvalBenchDB(n)
				if dbs[n], _, err = engine.RegisterDB(fmt.Sprintf("bench%d", n), structures[n]); err != nil {
					return err
				}
			}
			bq := p.Bind(dbs[n])
			want, err := p.Eval(ctx, structures[n])
			if err != nil {
				return err
			}
			got, err := bq.Eval(ctx) // warming evaluation
			if err != nil {
				return err
			}
			if !equalAnswers(got, want) {
				return fmt.Errorf("%s/N%d: registered answers differ from inline (%d vs %d)", c.Name, n, len(got), len(want))
			}
			// The register-once contract: repeated warm evaluations build
			// no further indexes, inline evaluations keep re-indexing.
			pre := p.IndexStats()
			if _, err := bq.Eval(ctx); err != nil {
				return err
			}
			warmBuilds := p.IndexStats().IndexBuilds - pre.IndexBuilds
			inline := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := p.Eval(ctx, structures[n]); err != nil {
						b.Fatal(err)
					}
				}
			})
			reg := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := bq.Eval(ctx); err != nil {
						b.Fatal(err)
					}
				}
			})
			speedup := float64(inline.NsPerOp()) / float64(reg.NsPerOp())
			fmt.Printf("%-8s %8d %12s %12s %8.2fx %12d\n", c.Name, n,
				time.Duration(inline.NsPerOp()).Round(time.Microsecond),
				time.Duration(reg.NsPerOp()).Round(time.Microsecond), speedup, warmBuilds)
			if n == c.Sizes[len(c.Sizes)-1] {
				speedups[c.Name] = speedup
				if warmBuilds != 0 && (c.Name == "chain6" || c.Name == "star5") {
					return fmt.Errorf("%s/N%d: warm registered eval built %d indexes, want 0", c.Name, n, warmBuilds)
				}
			}
			if report != nil {
				name := fmt.Sprintf("BenchmarkRegisteredDB/%s/N%d", c.Name, n)
				report.Benchmarks[name] = benchfmt.Entry{NsPerOp: float64(reg.NsPerOp())}
			}
		}
	}
	for _, name := range []string{"chain6", "star5"} {
		if speedups[name] < 2 {
			return fmt.Errorf("%s warm registered speedup %.2fx, want ≥2x over inline per-call indexing", name, speedups[name])
		}
	}
	fmt.Printf("registered-snapshot warm eval ≥2x over inline per-call indexing (chain %.1fx, star %.1fx), zero warm index builds\n",
		speedups["chain6"], speedups["star5"])
	if report != nil {
		if err := report.Save(benchOut); err != nil {
			return err
		}
		fmt.Printf("wrote registered-db baselines to %s\n", benchOut)
	}
	return nil
}
