package main

import (
	"context"
	"fmt"
	"os"
	"testing"
	"time"

	"cqapprox"
	"cqapprox/internal/benchfmt"
	"cqapprox/internal/workload"
)

// expIncremental is experiment E24: incremental view maintenance. A
// maintained BoundQuery (chain and star joins at N=3000) is driven
// through a sequence of single-tuple inserts and deletes; every diff
// must replay the previous answer set into exactly the set a fresh
// evaluation of the updated snapshot produces — byte-identical, with
// no fallback on any single-tuple step. The timing legs then compare
// steady-state delta propagation (IncrementalEval.Advance between two
// warm pre-forked snapshots) against full re-evaluation of the same
// snapshots, asserting the ≥10× speedup the subsystem exists for.
// With -bench-out the numbers are merged into the baseline under the
// BenchmarkIncrementalEval names.
func expIncremental() error {
	const n = 3000
	ctx := context.Background()
	engine := cqapprox.NewEngine()
	var report *benchfmt.Report
	if benchOut != "" {
		var err error
		report, err = benchfmt.Load(benchOut)
		if os.IsNotExist(err) {
			report, err = &benchfmt.Report{Benchmarks: map[string]benchfmt.Entry{}}, nil
		}
		if err != nil {
			return fmt.Errorf("loading %s: %w", benchOut, err)
		}
	}
	db0 := cqapprox.Snapshot(workload.EvalBenchDB(n))

	// The incremental steps insert and delete facts with small join
	// neighborhoods (fresh values beyond the generated range), so each
	// diff stays within the restriction budget and must propagate
	// without fallback; the chain delta builds a full 3-chain and the
	// star delta a complete center, so answers really appear and
	// vanish. The generated graph is degree-skewed, which the final
	// hub-delete step uses deliberately: deleting a high-degree base
	// fact may exceed the budget and fall back — and the diff must be
	// exact even then.
	cases := []struct {
		name   string
		src    string
		rel    string
		deltas []*cqapprox.Delta
	}{
		{"chain3", "Q(x0) :- E(x0,x1), E(x1,x2), E(x2,x3)", "E", []*cqapprox.Delta{
			cqapprox.NewDelta().Insert("E", n+10, n+11).Insert("E", n+11, n+12).Insert("E", n+12, n+13),
			cqapprox.NewDelta().Delete("E", n+11, n+12),
			cqapprox.NewDelta().Insert("E", n+11, n+12),
			cqapprox.NewDelta().Delete("E", n+10, n+11).Delete("E", n+11, n+12).Delete("E", n+12, n+13),
		}},
		{"star3", "Q(c) :- R1(c,l1), R2(c,l2), R3(c,l3)", "R1", []*cqapprox.Delta{
			cqapprox.NewDelta().Insert("R1", n+10, 1).Insert("R2", n+10, 2).Insert("R3", n+10, 3),
			cqapprox.NewDelta().Delete("R2", n+10, 2),
			cqapprox.NewDelta().Insert("R2", n+10, 2),
			cqapprox.NewDelta().Delete("R1", n+10, 1).Delete("R2", n+10, 2).Delete("R3", n+10, 3),
		}},
	}
	for _, c := range cases {
		p, err := engine.PrepareExact(ctx, cqapprox.MustParse(c.src))
		if err != nil {
			return err
		}
		ie, err := p.Bind(db0).Incremental(ctx)
		if err != nil {
			return err
		}
		if !ie.Supported() {
			return fmt.Errorf("%s: plan does not support incremental maintenance", c.name)
		}

		// Correctness: replay each diff onto the previous answer set and
		// demand the result matches a fresh evaluation of the updated
		// snapshot exactly — byte-identical maintained answers included.
		base := workload.EvalBenchDB(n).Tuples(c.rel)
		if len(base) == 0 {
			return fmt.Errorf("%s: bench db has no %s facts", c.name, c.rel)
		}
		hubDelete := cqapprox.NewDelta().Delete(c.rel, base[0]...)
		changed, fallbacks := 0, 0
		for i, d := range append(c.deltas, hubDelete) {
			prev := ie.Answers()
			_, diff, err := ie.Update(ctx, d)
			if err != nil {
				return fmt.Errorf("%s step %d: %w", c.name, i, err)
			}
			if diff.Fallback {
				if i < len(c.deltas) {
					return fmt.Errorf("%s step %d fell back: %s", c.name, i, diff.Reason)
				}
				fallbacks++
			}
			if !diff.Empty() {
				changed++
			}
			fresh, err := p.Bind(ie.Database()).Eval(ctx)
			if err != nil {
				return err
			}
			if err := replayDiff(prev, diff, fresh); err != nil {
				return fmt.Errorf("%s step %d: %w", c.name, i, err)
			}
			if fmt.Sprint([]cqapprox.Tuple(ie.Answers())) != fmt.Sprint([]cqapprox.Tuple(fresh)) {
				return fmt.Errorf("%s step %d: maintained answers differ from fresh evaluation", c.name, i)
			}
		}
		if changed == 0 {
			return fmt.Errorf("%s: no delta changed the answer set — the sequence proves nothing", c.name)
		}
		_ = fallbacks // the hub delete may or may not exceed the budget; exactness holds either way
		// Timing: both strategies re-evaluate between the same two warm
		// snapshots (base, base plus one fresh fact); the copy-on-write
		// fork either strategy pays identically stays outside the timers.
		ins := cqapprox.NewDelta().Insert(c.rel, n+7, n+8)
		del := cqapprox.NewDelta().Delete(c.rel, n+7, n+8)
		db1, err := db0.Update(ins)
		if err != nil {
			return err
		}
		mie, err := p.Bind(db0).Incremental(ctx)
		if err != nil {
			return err
		}
		if _, err := mie.Advance(ctx, db1, ins); err != nil { // warm both directions
			return err
		}
		if _, err := mie.Advance(ctx, db0, del); err != nil {
			return err
		}
		dres := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				next, d := db1, ins
				if i%2 == 1 {
					next, d = db0, del
				}
				diff, err := mie.Advance(ctx, next, d)
				if err != nil {
					b.Fatal(err)
				}
				if diff.Fallback {
					b.Fatalf("fallback: %s", diff.Reason)
				}
			}
		})
		if _, err := p.Bind(db1).Eval(ctx); err != nil { // warm db1 for the full leg
			return err
		}
		fres := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				db := db1
				if i%2 == 1 {
					db = db0
				}
				if _, err := p.Bind(db).Eval(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
		speedup := float64(fres.NsPerOp()) / float64(dres.NsPerOp())
		fmt.Printf("%-8s %8d answers %12s full %12s delta %8.1fx\n", c.name, len(ie.Answers()),
			time.Duration(fres.NsPerOp()).Round(time.Microsecond),
			time.Duration(dres.NsPerOp()).Round(time.Microsecond), speedup)
		if speedup < 10 {
			return fmt.Errorf("%s: delta advance only %.1fx over full re-eval, want ≥10x", c.name, speedup)
		}

		if report != nil {
			report.Benchmarks[fmt.Sprintf("BenchmarkIncrementalEval/Delta/%s/N%d", c.name, n)] = benchfmt.Entry{NsPerOp: float64(dres.NsPerOp())}
			report.Benchmarks[fmt.Sprintf("BenchmarkIncrementalEval/FullReeval/%s/N%d", c.name, n)] = benchfmt.Entry{NsPerOp: float64(fres.NsPerOp())}
		}
	}
	fmt.Printf("every diff replayed byte-identically against fresh evaluation; no single-tuple fallback\n")

	if report != nil {
		if err := report.Save(benchOut); err != nil {
			return err
		}
		fmt.Printf("wrote incremental baselines to %s\n", benchOut)
	}
	return nil
}

// replayDiff applies an answer diff onto the previous answer set and
// checks the result equals want exactly (same membership, same size;
// adds must be new, removes must be present).
func replayDiff(prev cqapprox.Answers, d *cqapprox.AnswerDiff, want cqapprox.Answers) error {
	set := map[string]bool{}
	for _, a := range prev {
		set[string(a.Key())] = true
	}
	for _, r := range d.Removed {
		if !set[string(r.Key())] {
			return fmt.Errorf("diff removes %v which was not present", r)
		}
		delete(set, string(r.Key()))
	}
	for _, a := range d.Added {
		if set[string(a.Key())] {
			return fmt.Errorf("diff adds %v which was already present", a)
		}
		set[string(a.Key())] = true
	}
	if len(set) != len(want) {
		return fmt.Errorf("replayed %d answers, fresh evaluation has %d", len(set), len(want))
	}
	for _, w := range want {
		if !set[string(w.Key())] {
			return fmt.Errorf("replayed set misses %v", w)
		}
	}
	return nil
}
