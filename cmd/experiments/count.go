package main

import (
	"context"
	"fmt"
	"math"
	"os"
	"testing"
	"time"

	"cqapprox"
	"cqapprox/internal/benchfmt"
	"cqapprox/internal/workload"
)

// expCount is experiment E22: the answer counting subsystem. The
// full-join counting workloads (chain3-full, star5-full) produce over
// a million answers each at N=3000; exact counting runs the
// multiplicity DP over the reduced forest and never materializes one.
// The experiment asserts the count equals len(Eval) exactly and that
// warm counting beats warm evaluation by ≥10× on both workloads (the
// observed margin is 100–700×: evaluation pays for every output
// tuple, counting only for the join structure). A seeded estimator
// leg on the sampling-classified path projection checks the (1±ε)
// contract against the exact count. With -bench-out the counting
// numbers are merged into the baseline under the BenchmarkCount
// names.
func expCount() error {
	const (
		n   = 3000
		eps = 0.1
	)
	ctx := context.Background()
	engine := cqapprox.NewEngine()
	var report *benchfmt.Report
	if benchOut != "" {
		var err error
		report, err = benchfmt.Load(benchOut)
		if os.IsNotExist(err) {
			report, err = &benchfmt.Report{Benchmarks: map[string]benchfmt.Entry{}}, nil
		}
		if err != nil {
			return fmt.Errorf("loading %s: %w", benchOut, err)
		}
	}
	db, _, err := engine.RegisterDB("e22", workload.EvalBenchDB(n))
	if err != nil {
		return err
	}
	cases := []struct {
		name  string
		query *cqapprox.Query
	}{
		{"chain3-full", workload.FullChainQuery(3)},
		{"star5-full", workload.FullStarQuery(5)},
	}
	fmt.Printf("%-12s %10s %12s %12s %9s\n", "query", "answers", "eval", "count", "speedup")
	for _, c := range cases {
		p, err := engine.PrepareExact(ctx, c.query)
		if err != nil {
			return err
		}
		bound := p.Bind(db)
		ans, err := bound.Eval(ctx) // warming evaluation; also the oracle
		if err != nil {
			return err
		}
		res, err := bound.Count(ctx)
		if err != nil {
			return err
		}
		if res.Count != uint64(len(ans)) || res.Estimated {
			return fmt.Errorf("%s/N%d: Count = %d (mode %s), len(Eval) = %d", c.name, n, res.Count, res.Mode, len(ans))
		}
		eres := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bound.Eval(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
		cres := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bound.Count(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
		speedup := float64(eres.NsPerOp()) / float64(cres.NsPerOp())
		fmt.Printf("%-12s %10d %12s %12s %8.1fx\n", c.name, len(ans),
			time.Duration(eres.NsPerOp()).Round(time.Microsecond),
			time.Duration(cres.NsPerOp()).Round(time.Microsecond), speedup)
		if speedup < 10 {
			return fmt.Errorf("%s/N%d: warm count only %.1fx over eval, want ≥10x", c.name, n, speedup)
		}
		if report != nil {
			report.Benchmarks[fmt.Sprintf("BenchmarkCount/%s/N%d", c.name, n)] =
				benchfmt.Entry{NsPerOp: float64(cres.NsPerOp())}
		}
	}

	// The estimator leg: the length-2 path projection classifies as
	// sampling (its head drops the middle variable but keeps both
	// endpoints), so EstimateCount actually estimates.
	q := cqapprox.MustParse("Q(x,z) :- E(x,y), E(y,z)")
	p, err := engine.PrepareExact(ctx, q)
	if err != nil {
		return err
	}
	bound := p.Bind(db)
	exact, err := bound.Count(ctx)
	if err != nil {
		return err
	}
	est, err := bound.EstimateCount(ctx, cqapprox.WithEpsilon(eps), cqapprox.WithSeed(22))
	if err != nil {
		return err
	}
	if !est.Estimated {
		return fmt.Errorf("path projection did not estimate (mode %s)", est.Mode)
	}
	rel := math.Abs(est.Estimate-float64(exact.Count)) / float64(exact.Count)
	fmt.Printf("estimator: exact %d, estimate %.0f (%d samples, %d batches), rel err %.4f (ε=%g)\n",
		exact.Count, est.Estimate, est.Samples, est.Batches, rel, eps)
	if rel > eps {
		return fmt.Errorf("seeded estimate %.0f misses ε=%g of exact %d", est.Estimate, eps, exact.Count)
	}
	fmt.Printf("exact counts match len(Eval) with zero answer materialization; counting ≥10x over eval at N=%d\n", n)
	if report != nil {
		if err := report.Save(benchOut); err != nil {
			return err
		}
		fmt.Printf("wrote counting baselines to %s\n", benchOut)
	}
	return nil
}
