// Command experiments regenerates every experiment in DESIGN.md's
// experiment index (E1–E25): the Figure 1 summary table, the
// quantitative content of the paper's propositions, theorems and
// examples, and the repo's own engineering experiments (E19: the
// indexed join runtime; E20: the registered database snapshot API;
// E21: morsel-driven parallel evaluation; E22: the answer counting
// subsystem; E23: ranked top-k enumeration; E24: incremental view
// maintenance; E25: sharded scatter-gather cluster scaling). Each
// experiment prints a table comparing the expected outcome against the
// measured one.
//
// Usage:
//
//	experiments              # run everything
//	experiments -run prop44  # run experiments whose name contains "prop44"
//	experiments -fast        # skip the slowest experiments
//	experiments -run indexedjoin -bench-out BENCH_eval.json
//	                         # refresh the E19 benchmark baselines
//	experiments -run registereddb -bench-out BENCH_eval.json
//	                         # refresh the E20 benchmark baselines
//	experiments -run parallel -bench-out BENCH_eval.json
//	                         # refresh the E21 benchmark baselines
//	experiments -run count -bench-out BENCH_eval.json
//	                         # refresh the E22 benchmark baselines
//	experiments -run topk -bench-out BENCH_eval.json
//	                         # refresh the E23 benchmark baselines
//	experiments -run incremental -bench-out BENCH_eval.json
//	                         # refresh the E24 benchmark baselines
//	experiments -run cluster -bench-out BENCH_eval.json
//	                         # refresh the E25 benchmark baselines
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

type experiment struct {
	name  string
	ref   string
	slow  bool
	runFn func() error
}

func main() {
	runPat := flag.String("run", "", "substring filter on experiment names")
	fast := flag.Bool("fast", false, "skip slow experiments")
	flag.StringVar(&benchOut, "bench-out", "", "merge E19 measurements into this BENCH_*.json baseline")
	flag.Parse()

	experiments := []experiment{
		{"figure1", "Figure 1: existence/size/time per class", false, expFigure1},
		{"prop44", "Prop 4.4: 2^n acyclic approximations", true, expProp44},
		{"trichotomy", "Theorem 5.1: trichotomy over graphs", false, expTrichotomy},
		{"joins", "Cor 5.3: strictly fewer joins (Boolean)", false, expJoins},
		{"dichotomy", "Thms 5.8/5.10: loop-free iff colorable", false, expDichotomy},
		{"prop59", "Prop 5.9: equal join counts (free vars)", false, expProp59},
		{"ex66", "Example 6.6: three acyclic approximations", false, expEx66},
		{"example57", "Intro Q2/Ex 5.7: unique P4 approximation", true, expExample57},
		{"speedup", "§1 motivation: exact vs approximate eval", true, expSpeedup},
		{"prop55", "Prop 5.5: combined-complexity blowup", true, expProp55},
		{"dpreduction", "Thm 4.12: reduction machinery", true, expDPReduction},
		{"prop411", "Prop 4.11: oracle decides equivalence", false, expProp411},
		{"tight", "Prop 5.6: tight approximations G_k", false, expTight},
		{"cor43", "Cor 4.3: single-exponential compute cost", true, expCor43},
		{"higherarity", "Props 5.13–5.15: beyond graphs", false, expHigherArity},
		{"cor65", "Cor 6.3/6.5: hypergraph-based sizes", false, expCor65},
		{"indexedjoin", "E19: indexed join runtime speedup", true, expIndexedJoin},
		{"registereddb", "E20: registered-snapshot eval speedup", true, expRegisteredDB},
		{"parallel", "E21: morsel-driven parallel eval speedup", true, expParallel},
		{"count", "E22: exact counting vs evaluation", true, expCount},
		{"topk", "E23: ranked top-k vs eval+sort", true, expTopK},
		{"incremental", "E24: delta advance vs full re-eval", true, expIncremental},
		{"cluster", "E25: sharded scatter-gather scaling", true, expCluster},
	}

	ran := 0
	for _, e := range experiments {
		if *runPat != "" && !strings.Contains(e.name, *runPat) {
			continue
		}
		if *fast && e.slow {
			fmt.Printf("== %s (%s) — skipped (-fast)\n\n", e.name, e.ref)
			continue
		}
		fmt.Printf("== %s — %s\n", e.name, e.ref)
		if err := e.runFn(); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println()
		ran++
	}
	if ran == 0 && *runPat != "" {
		fmt.Fprintf(os.Stderr, "no experiment matches %q\n", *runPat)
		os.Exit(1)
	}
}
