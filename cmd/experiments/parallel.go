package main

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"cqapprox"
	"cqapprox/internal/benchfmt"
	"cqapprox/internal/workload"
)

// expParallel is experiment E21: morsel-driven parallel evaluation.
// The chain and star workloads (non-Boolean, so the whole pipeline —
// semijoin passes, solve, head projection — runs) are prepared once
// and their database registered once; the warm evaluation then runs
// serial and with an 8-worker budget over the same snapshot, asserting
// byte-identical sorted answers and, on hosts with at least four CPUs,
// a ≥2× parallel speedup at the largest size. Hosts with fewer cores
// (CI shared runners, this container) report the measured ratio but
// only assert correctness — a 1-core box cannot physically demonstrate
// a parallel win. With -bench-out the parallel numbers are merged into
// the benchmark baseline under the BenchmarkParallelEval names.
func expParallel() error {
	const (
		n       = 3000
		workers = 8
	)
	ctx := context.Background()
	engine := cqapprox.NewEngine()
	var report *benchfmt.Report
	if benchOut != "" {
		var err error
		report, err = benchfmt.Load(benchOut)
		if os.IsNotExist(err) {
			report, err = &benchfmt.Report{Benchmarks: map[string]benchfmt.Entry{}}, nil
		}
		if err != nil {
			return fmt.Errorf("loading %s: %w", benchOut, err)
		}
	}
	db, _, err := engine.RegisterDB("e21", workload.EvalBenchDB(n))
	if err != nil {
		return err
	}
	cases := []struct {
		name  string
		query *cqapprox.Query
	}{
		{"chain6", workload.ChainQuery(6)},
		{"star5", workload.StarQuery(5)},
	}
	fmt.Printf("%-8s %8s %12s %12s %9s %9s\n", "query", "|V|", "serial", "parallel", "workers", "speedup")
	speedups := map[string]float64{}
	for _, c := range cases {
		p, err := engine.PrepareExact(ctx, c.query)
		if err != nil {
			return err
		}
		serial := p.Bind(db)
		want, err := serial.Eval(ctx) // warming evaluation
		if err != nil {
			return err
		}
		got, err := serial.Eval(ctx, cqapprox.WithEvalParallelism(workers))
		if err != nil {
			return err
		}
		if !equalAnswers(got, want) {
			return fmt.Errorf("%s/N%d: parallel answers differ from serial (%d vs %d)", c.name, n, len(got), len(want))
		}
		for i := range got { // byte-identical, not merely set-equal
			if !got[i].Equal(want[i]) {
				return fmt.Errorf("%s/N%d: parallel answer order diverges at %d", c.name, n, i)
			}
		}
		sres := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := serial.Eval(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
		pres := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := serial.Eval(ctx, cqapprox.WithEvalParallelism(workers)); err != nil {
					b.Fatal(err)
				}
			}
		})
		speedup := float64(sres.NsPerOp()) / float64(pres.NsPerOp())
		speedups[c.name] = speedup
		fmt.Printf("%-8s %8d %12s %12s %9d %8.2fx\n", c.name, n,
			time.Duration(sres.NsPerOp()).Round(time.Microsecond),
			time.Duration(pres.NsPerOp()).Round(time.Microsecond), workers, speedup)
		if report != nil {
			// ns/op only: allocs/op of a parallel run scales with the
			// worker count, which differs per machine class — gating it
			// would fail any host unlike the one that wrote the baseline.
			report.Benchmarks[fmt.Sprintf("BenchmarkParallelEval/%s/N%d", c.name, n)] =
				benchfmt.Entry{NsPerOp: float64(pres.NsPerOp())}
		}
	}
	if cpus := runtime.NumCPU(); cpus >= 4 {
		for _, name := range []string{"chain6", "star5"} {
			if speedups[name] < 2 {
				return fmt.Errorf("%s warm parallel speedup %.2fx at %d workers on %d CPUs, want ≥2x", name, speedups[name], workers, cpus)
			}
		}
		fmt.Printf("parallel warm eval ≥2x over serial at %d workers (chain %.1fx, star %.1fx), answers byte-identical\n",
			workers, speedups["chain6"], speedups["star5"])
	} else {
		fmt.Printf("only %d CPU(s): speedup assertion skipped (chain %.2fx, star %.2fx), answers byte-identical\n",
			cpus, speedups["chain6"], speedups["star5"])
	}
	if report != nil {
		if err := report.Save(benchOut); err != nil {
			return err
		}
		fmt.Printf("wrote parallel-eval baselines to %s\n", benchOut)
	}
	return nil
}
