// Command benchcheck is the benchmark-regression gate: it compares
// `go test -bench` output against a committed BENCH_*.json baseline
// and fails (exit 1) when any benchmark regressed beyond the allowed
// percentage in ns/op — or, for baselines carrying allocs/op (recorded
// from -benchmem runs), in allocations per op. With -update it
// (re)writes the baseline (both metrics) from the measured numbers
// instead.
//
// Usage:
//
//	go test -bench='PreparedReuse|ServerThroughput|IndexedJoin' \
//	    -benchmem -benchtime=500ms -count=5 . | tee bench.txt
//	go run ./cmd/benchcheck -baseline BENCH_eval.json bench.txt
//	go run ./cmd/benchcheck -baseline BENCH_eval.json -update bench.txt
//
// The input is a file argument or stdin ("-"). Under -count=N the
// minimum of the samples is compared — the fastest run is the least
// noise-disturbed one. The allocation gate only fires where both sides
// report the metric: baseline entries without allocs_per_op, and runs
// without -benchmem, skip it. Benchmarks present in the output but
// missing from the baseline are reported (and added by -update);
// baseline entries that did not run are skipped.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cqapprox/internal/benchfmt"
)

func main() {
	baselinePath := flag.String("baseline", "BENCH_eval.json", "baseline JSON file to compare against (or write with -update)")
	maxRegress := flag.Float64("max-regress", 25, "maximum allowed ns/op regression in percent")
	update := flag.Bool("update", false, "write the measured numbers to the baseline instead of comparing")
	note := flag.String("note", "", "with -update: note recorded in the baseline file")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if arg := flag.Arg(0); arg != "" && arg != "-" {
		f, err := os.Open(arg)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	samples, err := benchfmt.ParseGoBench(in)
	if err != nil {
		fatal(err)
	}
	if len(samples) == 0 {
		fatal(fmt.Errorf("no benchmark results in input"))
	}

	if *update {
		rep, err := benchfmt.Load(*baselinePath)
		if os.IsNotExist(err) {
			rep = &benchfmt.Report{Benchmarks: map[string]benchfmt.Entry{}}
			err = nil
		}
		if err != nil {
			fatal(err)
		}
		if *note != "" {
			rep.Note = *note
		}
		for name, s := range samples {
			e := benchfmt.Entry{NsPerOp: benchfmt.Best(s.Ns)}
			if len(s.Allocs) > 0 {
				e.AllocsPerOp = benchfmt.Allocs(benchfmt.Best(s.Allocs))
			}
			rep.Benchmarks[name] = e
		}
		if err := rep.Save(*baselinePath); err != nil {
			fatal(err)
		}
		fmt.Printf("benchcheck: wrote %d benchmarks to %s\n", len(samples), *baselinePath)
		return
	}

	rep, err := benchfmt.Load(*baselinePath)
	if err != nil {
		fatal(err)
	}
	regressions := 0
	compared := 0
	for _, name := range rep.Names() {
		s, ran := samples[name]
		if !ran {
			continue
		}
		compared++
		base := rep.Benchmarks[name].NsPerOp
		best := benchfmt.Best(s.Ns)
		delta := 100 * (best - base) / base
		switch {
		case delta > *maxRegress:
			regressions++
			fmt.Printf("REGRESSION %-52s %12.0f ns/op vs baseline %12.0f (%+.1f%% > %.0f%%)\n",
				name, best, base, delta, *maxRegress)
		case delta < -*maxRegress:
			fmt.Printf("improved   %-52s %12.0f ns/op vs baseline %12.0f (%+.1f%%; consider -update)\n",
				name, best, base, delta)
		default:
			fmt.Printf("ok         %-52s %12.0f ns/op vs baseline %12.0f (%+.1f%%)\n",
				name, best, base, delta)
		}
		// Allocation gate: only where the baseline recorded allocs/op
		// and this run reported them (-benchmem). A zero baseline is a
		// promise — any allocation at all regresses it.
		if base := rep.Benchmarks[name].AllocsPerOp; base != nil && len(s.Allocs) > 0 {
			baseAllocs := *base
			bestAllocs := benchfmt.Best(s.Allocs)
			regressed := false
			if baseAllocs == 0 {
				regressed = bestAllocs > 0
			} else {
				regressed = 100*(bestAllocs-baseAllocs)/baseAllocs > *maxRegress
			}
			if regressed {
				regressions++
				fmt.Printf("REGRESSION %-52s %12.0f allocs/op vs baseline %9.0f (> %.0f%%)\n",
					name, bestAllocs, baseAllocs, *maxRegress)
			}
		}
	}
	for name, s := range samples {
		if _, known := rep.Benchmarks[name]; !known {
			fmt.Printf("new        %-52s %12.0f ns/op (not in baseline; add with -update)\n",
				name, benchfmt.Best(s.Ns))
		}
	}
	if compared == 0 {
		fatal(fmt.Errorf("no benchmark in the input matches the baseline %s", *baselinePath))
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: %d benchmark(s) regressed more than %.0f%%\n", regressions, *maxRegress)
		os.Exit(1)
	}
	fmt.Printf("benchcheck: %d benchmark(s) within %.0f%% of %s\n", compared, *maxRegress, *baselinePath)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcheck:", err)
	os.Exit(1)
}
