package cqapprox

import (
	"context"

	"cqapprox/internal/eval"
	"cqapprox/internal/obs"
)

// PlanExplain is the EXPLAIN view of a prepared query: the static plan
// structure — approximation class chosen, join-forest shape per tree,
// re-rooting decisions, dead-step eliminations and the counting
// classification. It carries no data and no clocks (the prepare-phase
// timings aside), so Text renders stably across runs on the same
// prepared query. The JSON encoding is the wire form served by
// POST /v1/explain.
type PlanExplain = obs.PlanExplain

// ExecTrace is the ANALYZE view of one traced evaluation or count: the
// per-node semijoin row counters, live-bitmap survivor counts, index
// build/probe counts, per-phase wall times and — for parallel runs —
// morsel chunk and worker-utilization accounting. Produced only by the
// *Trace call variants (EvalTrace, Count with WithTrace, …); untraced
// calls pay nothing for its existence.
type ExecTrace = obs.ExecTrace

// Phase is one named wall-time span inside a PlanExplain or ExecTrace.
type Phase = obs.Phase

// Explain returns the prepared query's static plan description. The
// same prepared query (including every cache hit of it) explains
// identically, except that Query/Minimized/Approximation render under
// the caller's own head name and Candidates is zero on cache hits
// (that caller ran no search). The Prepare phases are the wall times
// of the build that actually ran, shared across cache hits.
func (p *PreparedQuery) Explain() *PlanExplain {
	ex := p.plan.Explain()
	ex.Query = p.src.String()
	ex.Minimized = p.min.String()
	if p.class != nil {
		ex.Class = p.class.Name()
		ex.Approximation = p.chosen.String()
	}
	ex.Candidates = p.inspected
	if len(p.prep) > 0 {
		ex.Prepare = append([]Phase{}, p.prep...)
	}
	return ex
}

// EvalTrace is Eval plus an execution trace of this one call: the
// answers are identical (and the plan's cumulative counters advance
// exactly as for Eval); the trace additionally reports per-node rows
// in/out per semijoin pass, surviving rows per node, index builds and
// probes, per-phase wall times, and morsel/worker accounting when the
// evaluation ran parallel.
func (p *PreparedQuery) EvalTrace(ctx context.Context, db *Structure) (Answers, *ExecTrace, error) {
	return p.plan.EvalTraceOn(ctx, eval.NewSource(db), p.parallelism())
}

// EvalBoolTrace is EvalBool plus an execution trace; the reduction
// stops at the bottom-up semijoin pass, exactly like EvalBool.
func (p *PreparedQuery) EvalBoolTrace(ctx context.Context, db *Structure) (bool, *ExecTrace, error) {
	return p.plan.EvalBoolTraceOn(ctx, eval.NewSource(db), p.parallelism())
}

// EvalTrace is PreparedQuery.EvalTrace over the binding's snapshot;
// the trace's index-build counters then reflect only builds the
// snapshot's persistent cache had not already absorbed.
func (b *BoundQuery) EvalTrace(ctx context.Context) (Answers, *ExecTrace, error) {
	return b.p.plan.EvalTraceOn(ctx, b.source(), b.p.parallelism())
}

// EvalBoolTrace is PreparedQuery.EvalBoolTrace over the binding's
// snapshot.
func (b *BoundQuery) EvalBoolTrace(ctx context.Context) (bool, *ExecTrace, error) {
	return b.p.plan.EvalBoolTraceOn(ctx, b.source(), b.p.parallelism())
}
