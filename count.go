package cqapprox

import (
	"context"

	"cqapprox/internal/count"
	"cqapprox/internal/eval"
)

// CountResult is the outcome of Count or EstimateCount: the answer
// count (exact, or the rounded estimate), how it was obtained, and —
// for estimates — the sampling effort and the accuracy knobs in
// effect.
type CountResult struct {
	// Count is the number of distinct answers; exact when Estimated is
	// false, the rounded Estimate otherwise.
	Count uint64
	// Estimate is the raw, possibly fractional estimate (float64(Count)
	// for exact results).
	Estimate float64
	// Estimated reports whether sampling produced the result.
	Estimated bool
	// Mode names the path taken: "exact-dp" (multiplicity DP over the
	// reduced forest, no answer materialisation), "exact-eval" (full
	// evaluation, counted), "exact-enum" (backtracking enumeration,
	// cyclic plans), or "estimate" (the sampling estimator).
	Mode string
	// Samples and Batches report the estimator's effort (zero when
	// exact).
	Samples int
	Batches int
	// Epsilon and Delta echo the accuracy target of an estimate.
	Epsilon float64
	Delta   float64
	// Trace is the execution trace of this count, present only when the
	// call opted in with WithTrace; nil otherwise.
	Trace *ExecTrace `json:"trace,omitempty"`
}

func fromCount(r count.Result) *CountResult {
	return &CountResult{
		Count:     r.Count,
		Estimate:  r.Estimate,
		Estimated: r.Estimated,
		Mode:      r.Mode,
		Samples:   r.Samples,
		Batches:   r.Batches,
		Epsilon:   r.Epsilon,
		Delta:     r.Delta,
	}
}

// countOn dispatches one counting call to the exact or estimating
// subsystem entry point, traced or not. Counting shares the unified
// option config (options.go): WithEvalParallelism overrides the view's
// worker budget, WithTrace attaches the trace, and the estimator knobs
// land in cfg.count.
func countOn(ctx context.Context, pl *eval.Plan, src eval.Source, par int, estimate bool, opts []CountOption) (*CountResult, error) {
	cfg := optConfigOf(opts)
	par = cfg.parallelism(par)
	var (
		res count.Result
		tr  *ExecTrace
		err error
	)
	switch {
	case estimate && cfg.trace:
		res, tr, err = count.EstimateTrace(ctx, pl, src, par, cfg.count)
	case estimate:
		res, err = count.Estimate(ctx, pl, src, par, cfg.count)
	case cfg.trace:
		res, tr, err = count.ExactTrace(ctx, pl, src, par)
	default:
		res, err = count.Exact(ctx, pl, src, par)
	}
	if err != nil {
		return nil, err
	}
	out := fromCount(res)
	out.Trace = tr
	return out, nil
}

// Count returns the exact number of distinct answers of the prepared
// (approximated) query on db — without materialising them when the
// plan permits. Acyclic plans whose head structure is free-connex-like
// count by a multiplicity DP over the Yannakakis-reduced forest in
// O(|D|·|Q'|); other acyclic plans fall back to a counted evaluation,
// cyclic plans to counted enumeration (see CountResult.Mode). The
// prepared query's worker budget (Parallel) applies to the reduction
// and DP passes. The error is ErrCountOverflow when the count exceeds
// uint64.
func (p *PreparedQuery) Count(ctx context.Context, db *Structure, opts ...CountOption) (*CountResult, error) {
	return countOn(ctx, p.plan, eval.NewSource(db), p.parallelism(), false, opts)
}

// EstimateCount returns the number of distinct answers on db, using
// the FPRAS-style sampling estimator exactly where exact counting
// would have to materialise answers: with probability at least 1-δ
// the estimate is within a (1±ε) factor of the true count. Plans that
// count exactly for free return the exact count (Estimated false) —
// estimation never makes a cheap count worse.
//
//	res, err := p.EstimateCount(ctx, db,
//		cqapprox.WithEpsilon(0.05), cqapprox.WithSeed(7))
func (p *PreparedQuery) EstimateCount(ctx context.Context, db *Structure, opts ...CountOption) (*CountResult, error) {
	return countOn(ctx, p.plan, eval.NewSource(db), p.parallelism(), true, opts)
}

// Count is PreparedQuery.Count over the binding's snapshot: reduction
// and DP probe the snapshot's persistent shared indexes instead of
// deriving per-call ones.
func (b *BoundQuery) Count(ctx context.Context, opts ...CountOption) (*CountResult, error) {
	return countOn(ctx, b.p.plan, b.source(), b.p.parallelism(), false, opts)
}

// EstimateCount is PreparedQuery.EstimateCount over the binding's
// snapshot; see BoundQuery.Count.
func (b *BoundQuery) EstimateCount(ctx context.Context, opts ...CountOption) (*CountResult, error) {
	return countOn(ctx, b.p.plan, b.source(), b.p.parallelism(), true, opts)
}
