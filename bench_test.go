package cqapprox

// The benchmark harness: one group per experiment row in DESIGN.md's
// index. These benches regenerate the measured side of every table and
// figure (Figure 1 plus the quantitative propositions); cmd/experiments
// prints the same data as human-readable tables.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"cqapprox/internal/core"
	"cqapprox/internal/digraph"
	"cqapprox/internal/eval"
	"cqapprox/internal/gadgets"
	"cqapprox/internal/hom"
	"cqapprox/internal/workload"
)

// --- E1 (Figure 1): time to compute approximations per class ---------

func benchApprox(b *testing.B, q *Query, c Class) {
	b.Helper()
	opt := DefaultOptions()
	for i := 0; i < b.N; i++ {
		if _, err := core.Approximate(q, c, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure1_TW1_C4(b *testing.B)     { benchApprox(b, workload.CycleQuery(4), TW(1)) }
func BenchmarkFigure1_TW2_C4(b *testing.B)     { benchApprox(b, workload.CycleQuery(4), TW(2)) }
func BenchmarkFigure1_AC_C4(b *testing.B)      { benchApprox(b, workload.CycleQuery(4), AC()) }
func BenchmarkFigure1_HTW2_C4(b *testing.B)    { benchApprox(b, workload.CycleQuery(4), HTW(2)) }
func BenchmarkFigure1_TW1_Grid(b *testing.B)   { benchApprox(b, workload.GridQuery(2, 3), TW(1)) }
func BenchmarkFigure1_AC_Ternary(b *testing.B) { benchApprox(b, workload.TernaryCycleQuery(3), AC()) }

// --- E2 (Prop 4.4): the 2^n family ------------------------------------

func BenchmarkProp44_BuildAndVerify(b *testing.B) {
	for i := 0; i < b.N; i++ {
		gn := gadgets.NewGn(1)
		for _, s := range gadgets.AllLabels(1) {
			gs := gadgets.NewGns(1, s)
			if !hom.Exists(gn.G, gs, nil) {
				b.Fatal("containment lost")
			}
		}
	}
}

func BenchmarkProp44_IncomparabilityCheck(b *testing.B) {
	gv := gadgets.NewGns(1, "V")
	gh := gadgets.NewGns(1, "H")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if digraph.ExistsHomLeveled(gv, gh) {
			b.Fatal("G^V → G^H should fail")
		}
	}
}

// --- E3 (Thm 5.1): trichotomy classification --------------------------

func BenchmarkThm51_Classify(b *testing.B) {
	qs := []*Query{
		workload.CycleQuery(3),
		MustParse("Q() :- E(x,y), E(y,z), E(z,u), E(x,u)"),
		MustParse("Q() :- E(a,b), E(c,b), E(c,d), E(a,d)"),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range qs {
			if _, err := core.ClassifyGraphTableau(q); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- E7 (Example 6.6): enumerate hypergraph approximations ------------

func BenchmarkEx66_Enumerate(b *testing.B) {
	q := MustParse("Q() :- R(x1,x2,x3), R(x3,x4,x5), R(x5,x6,x1)")
	opt := DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		apps, err := core.Approximations(q, AC(), opt)
		if err != nil || len(apps) != 3 {
			b.Fatalf("apps=%d err=%v", len(apps), err)
		}
	}
}

// --- E9 (§1 motivation): exact vs approximate evaluation --------------

func speedupDB(n int) *Structure {
	rng := rand.New(rand.NewSource(42))
	return workload.RandomSocial(rng, n, 6, 0.3)
}

func BenchmarkEval_Exact_C4(b *testing.B) {
	q := MustParse("Q(x) :- E(x,y), E(y,z), E(z,w), E(w,x)")
	for _, n := range []int{100, 300, 1000} {
		db := speedupDB(n)
		b.Run(fmt.Sprintf("N%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eval.Naive(q, db)
			}
		})
	}
}

func BenchmarkEval_Approx_C4(b *testing.B) {
	q := MustParse("Q(x) :- E(x,y), E(y,z), E(z,w), E(w,x)")
	a, err := Approximate(q, TW(1), DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{100, 300, 1000, 10000} {
		db := speedupDB(n)
		b.Run(fmt.Sprintf("N%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eval.Eval(a, db)
			}
		})
	}
}

// Engine ablation: Yannakakis versus naive backtracking on the same
// acyclic query — the payoff the approximation buys.
func BenchmarkEngine_Yannakakis_Path3(b *testing.B) {
	q := MustParse("Q(x,w) :- E(x,y), E(y,z), E(z,w)")
	db := speedupDB(300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Yannakakis(q, db); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngine_Naive_Path3(b *testing.B) {
	q := MustParse("Q(x,w) :- E(x,y), E(y,z), E(z,w)")
	db := speedupDB(300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.Naive(q, db)
	}
}

func BenchmarkEngine_TreeDecomp_C4(b *testing.B) {
	q := MustParse("Q(x) :- E(x,y), E(y,z), E(z,w), E(w,x)")
	db := speedupDB(300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.ByTreeDecomposition(q, db); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E10 (Prop 5.5): combined complexity of balanced queries ----------

func BenchmarkProp55_CombinedComplexity(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	db := workload.LayeredDAG(rng, 8, 30, 3)
	for _, k := range []int{3, 4, 5} {
		g := digraph.New()
		for i := 0; i < k; i++ {
			digraph.AddEdge(g, 2*i, 2*i+1)
			digraph.AddEdge(g, (2*i+2)%(2*k), 2*i+1)
		}
		q := FromTableau(g, nil)
		b.Run(fmt.Sprintf("Vars%d", 2*k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eval.Naive(q, db)
			}
		})
	}
}

// --- E11 (Thm 4.12): exact homomorphism checks on the reduction -------

func BenchmarkThm412_UniqueHomQStarT1(b *testing.B) {
	q := gadgets.NewQStar()
	t1 := gadgets.Ti(1)
	allowed, ok := digraph.LevelRestriction(q.G, t1.G)
	if !ok {
		b.Fatal("level restriction inapplicable")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if hom.CountRestricted(q.G, t1.G, nil, allowed) != 1 {
			b.Fatal("uniqueness lost")
		}
	}
}

func BenchmarkThm412_ChooserPair(b *testing.B) {
	bt := gadgets.NewBigT()
	ch := gadgets.NewExtChooser21()
	lr, _ := digraph.LevelRestriction(ch.G, bt.G)
	pre := map[int]int{ch.A: bt.TNode[1], ch.B: bt.TNode[3]}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !hom.ExistsRestricted(ch.G, bt.G, pre, lr) {
			b.Fatal("chooser pair (t1,t3) must exist")
		}
	}
}

// --- E14 (Cor 4.3): single-exponential growth of approximation cost ---

func BenchmarkCor43_ApproxCost(b *testing.B) {
	for n := 3; n <= 6; n++ {
		q := workload.CycleQuery(n)
		b.Run(fmt.Sprintf("C%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Approximations(q, TW(1), DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E16 (Cor 6.5): hypergraph-based approximation cost ---------------

func BenchmarkCor65_HTWApprox(b *testing.B) {
	q := workload.TernaryCycleQuery(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Approximate(q, HTW(2), DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E17 (this repo): prepare-once / execute-many ----------------------

// BenchmarkPreparedReuse quantifies what the Engine/PreparedQuery
// redesign buys a service answering the same query repeatedly. The
// Cold variant is the stateless flow this API replaced: every request
// re-runs the Bell-number approximation search before evaluating. The
// Warm variant prepares once outside the loop and only evaluates the
// cached plan per request. The CachedPrepare variant measures a
// Prepare that hits the engine cache (the per-request cost for a
// service that calls Prepare on every request).
// preparedReuseDBs: OLTP is a request-sized database where the static
// search cost dominates (the redesign's headline win: ≥10× for the
// triangle query); Social300 is a bulk workload where evaluation cost
// dominates and the saving is the search cost alone.
func preparedReuseDBs() map[string]*Structure {
	small := NewStructure()
	for _, e := range [][2]int{{1, 2}, {2, 3}, {3, 1}, {4, 4}, {5, 6}} {
		small.Add("E", e[0], e[1])
	}
	return map[string]*Structure{"OLTP": small, "Social300": speedupDB(300)}
}

func BenchmarkPreparedReuse_Cold(b *testing.B) {
	q := MustParse("Q(x) :- E(x,y), E(y,z), E(z,x)")
	for name, db := range preparedReuseDBs() {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a, err := core.Approximate(q, TW(1), core.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				eval.Eval(a, db)
			}
		})
	}
}

func BenchmarkPreparedReuse_Warm(b *testing.B) {
	ctx := context.Background()
	engine := NewEngine()
	q := MustParse("Q(x) :- E(x,y), E(y,z), E(z,x)")
	p, err := engine.Prepare(ctx, q, TW(1))
	if err != nil {
		b.Fatal(err)
	}
	for name, db := range preparedReuseDBs() {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p.Eval(ctx, db); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPreparedReuse_CachedPrepare(b *testing.B) {
	ctx := context.Background()
	engine := NewEngine()
	q := MustParse("Q(x) :- E(x,y), E(y,z), E(z,x)")
	if _, err := engine.Prepare(ctx, q, TW(1)); err != nil {
		b.Fatal(err)
	}
	for name, db := range preparedReuseDBs() {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := engine.Prepare(ctx, q, TW(1))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := p.Eval(ctx, db); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPreparedStream measures the streaming path (semijoin
// reduction + enumeration) against materialised evaluation.
func BenchmarkPreparedStream(b *testing.B) {
	ctx := context.Background()
	engine := NewEngine()
	q := MustParse("Q(x,w) :- E(x,y), E(y,z), E(z,w)")
	p, err := engine.PrepareExact(ctx, q)
	if err != nil {
		b.Fatal(err)
	}
	db := speedupDB(60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for range p.Answers(ctx, db) {
			n++
		}
		if n == 0 {
			b.Fatal("no answers")
		}
	}
}

// --- substrate micro-benchmarks ----------------------------------------

func BenchmarkHom_CoreOfD(b *testing.B) {
	d := gadgets.NewD()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !hom.IsCore(d.G, nil) {
			// D itself may or may not be a core; the work is the point.
			_ = i
		}
	}
}

func BenchmarkHom_ContainmentCheck(b *testing.B) {
	// C3 ⊆ C6: the 3-cycle query is the more restrictive one (the
	// containment homomorphism wraps C6 around C3).
	c6 := workload.CycleQuery(6)
	c3 := workload.CycleQuery(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Contained(c3, c6) {
			b.Fatal("C3 ⊆ C6 must hold")
		}
		if Contained(c6, c3) {
			b.Fatal("C6 ⊄ C3")
		}
	}
}

func BenchmarkMinimize_RedundantQuery(b *testing.B) {
	q := MustParse("Q() :- E(x,y), E(x,z), E(x,w), E(w,v)")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Minimize(q)
	}
}
