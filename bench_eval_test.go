package cqapprox

// E19: the indexed join runtime. BenchmarkIndexedJoin measures warm
// PreparedQuery.Eval over the chain/star/cycle workloads at several
// database sizes — the numbers the committed BENCH_eval.json baseline
// tracks and CI's benchcheck gate compares against (>25% ns/op
// regression fails the build). cmd/experiments -run indexedjoin
// reports the same workloads against the pre-PR string-key baseline
// and regenerates BENCH_eval.json.

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"cqapprox/internal/workload"
)

// preparedBenchCase prepares one E19 workload on a warm engine.
func preparedBenchCase(b *testing.B, engine *Engine, c workload.EvalBenchCase) *PreparedQuery {
	b.Helper()
	ctx := context.Background()
	var (
		p   *PreparedQuery
		err error
	)
	if c.Exact {
		p, err = engine.PrepareExact(ctx, c.Query)
	} else {
		p, err = engine.Prepare(ctx, c.Query, TW(1))
	}
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func BenchmarkIndexedJoin(b *testing.B) {
	ctx := context.Background()
	engine := NewEngine()
	for _, c := range workload.EvalBenchSuite() {
		p := preparedBenchCase(b, engine, c)
		for _, n := range c.Sizes {
			db := workload.EvalBenchDB(n)
			b.Run(fmt.Sprintf("%s/N%d", c.Name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					ans, err := p.Eval(ctx, db)
					if err != nil {
						b.Fatal(err)
					}
					if len(ans) == 0 {
						b.Fatal("no answers")
					}
				}
			})
		}
	}
}

// BenchmarkIndexedJoinBool tracks the Boolean fast path (single
// semijoin pass) on the largest chain workload.
func BenchmarkIndexedJoinBool(b *testing.B) {
	ctx := context.Background()
	engine := NewEngine()
	suite := workload.EvalBenchSuite()
	p := preparedBenchCase(b, engine, suite[0])
	db := workload.EvalBenchDB(3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := p.EvalBool(ctx, db)
		if err != nil {
			b.Fatal(err)
		}
		if !ok {
			b.Fatal("expected answers")
		}
	}
}

// Observability: the trace-off eval path must stay flat with tracing
// compiled in. BenchmarkEvalTraceOff is the plain warm bound eval —
// the executor runs with its (nil) trace hook present, paying only the
// nil checks — and is benchcheck-gated against the committed baseline.
// BenchmarkEvalTraceOn runs the identical evaluation with the trace
// frame live, bounding what ANALYZE costs when a caller asks for it.
func benchEvalTrace(b *testing.B, traced bool) {
	ctx := context.Background()
	engine := NewEngine()
	suite := workload.EvalBenchSuite()
	p := preparedBenchCase(b, engine, suite[1]) // star5: non-Boolean, all phases run
	d, _, err := engine.RegisterDB("trace3000", workload.EvalBenchDB(3000))
	if err != nil {
		b.Fatal(err)
	}
	bound := p.Bind(d)
	if _, err := bound.Eval(ctx); err != nil { // warm the snapshot caches
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if traced {
			ans, tr, err := bound.EvalTrace(ctx)
			if err != nil {
				b.Fatal(err)
			}
			if len(ans) == 0 || tr == nil || len(tr.Nodes) == 0 {
				b.Fatal("traced eval returned no answers or an empty trace")
			}
		} else {
			ans, err := bound.Eval(ctx)
			if err != nil {
				b.Fatal(err)
			}
			if len(ans) == 0 {
				b.Fatal("no answers")
			}
		}
	}
}

func BenchmarkEvalTraceOff(b *testing.B) { benchEvalTrace(b, false) }
func BenchmarkEvalTraceOn(b *testing.B)  { benchEvalTrace(b, true) }

// Ranked top-k enumeration. BenchmarkTopK/Ranked streams the first 10
// answers of a lex-connex full-chain query out of the reduced forest
// with early termination; BenchmarkTopK/SortAll is the fallback cost —
// evaluate everything, take the first 10 of the order. The gap is the
// point of the ranked pipeline (cmd/experiments -run topk asserts the
// ≥10× separation and byte-identity of the two prefixes; benchmarks
// only measure).
func BenchmarkTopK(b *testing.B) {
	ctx := context.Background()
	engine := NewEngine()
	q := workload.FullChainQuery(3) // Q(x0..x3), every head position a chain var
	p, err := engine.PrepareExact(ctx, q)
	if err != nil {
		b.Fatal(err)
	}
	db := workload.EvalBenchDB(3000)
	order := append([]string{}, q.Head...)
	b.Run("Ranked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ans, err := p.Eval(ctx, db, WithOrder(order...), WithLimit(10))
			if err != nil {
				b.Fatal(err)
			}
			if len(ans) != 10 {
				b.Fatalf("top-10 returned %d answers", len(ans))
			}
		}
	})
	b.Run("SortAll", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ans, err := p.Eval(ctx, db) // canonical sorted order: the same key
			if err != nil {
				b.Fatal(err)
			}
			if len(ans) < 10 {
				b.Fatalf("full eval returned %d answers", len(ans))
			}
		}
	})
}

// E21: morsel-driven parallel evaluation. BenchmarkParallelEval
// measures warm BoundQuery.Eval over registered snapshots with a
// GOMAXPROCS worker budget — against BenchmarkIndexedJoin's serial
// numbers this is the parallel executor's headline. (On single-core
// hosts the budget degenerates to ~serial; the committed baseline is
// regenerated per machine class via cmd/experiments -run parallel
// -bench-out or benchcheck -update.)
func BenchmarkParallelEval(b *testing.B) {
	ctx := context.Background()
	engine := NewEngine()
	workers := runtime.GOMAXPROCS(0)
	for _, c := range workload.EvalBenchSuite() {
		p := preparedBenchCase(b, engine, c)
		for _, n := range c.Sizes {
			if n != c.Sizes[len(c.Sizes)-1] {
				continue // the largest size is where parallelism matters
			}
			d, _, err := engine.RegisterDB(fmt.Sprintf("par%d", n), workload.EvalBenchDB(n))
			if err != nil {
				b.Fatal(err)
			}
			bound := p.Bind(d).Parallel(workers)
			if _, err := bound.Eval(ctx); err != nil { // warm the snapshot caches
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/N%d", c.Name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := bound.Eval(ctx); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
