package cqapprox

import (
	"context"
	"slices"
	"sync"
	"testing"

	"cqapprox/internal/workload"
)

// sameAnswerSets compares two answer sets element-wise (both arrive
// sorted and deduplicated).
func sameAnswerSets(a, b Answers) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// The acceptance property of the snapshot API: repeated evaluations
// against a registered database perform zero additional index builds
// after the first (warming) one — the per-call indexing cost moved
// into the snapshot's shared cache. Chain and star are the shapes
// whose solve phase the schedule analysis fully collapses; they must
// go completely build-free warm.
func TestRegisteredDBIndexReuse(t *testing.T) {
	engine := NewEngine()
	ctx := context.Background()
	db := workload.EvalBenchDB(300)
	d, _, err := engine.RegisterDB("bench", db)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []*Query{workload.ChainQuery(6), workload.StarQuery(5)} {
		p, err := engine.PrepareExact(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		b := p.Bind(d)
		want, err := p.Eval(ctx, db)
		if err != nil {
			t.Fatal(err)
		}
		got, err := b.Eval(ctx) // warming evaluation: may build shared indexes
		if err != nil {
			t.Fatal(err)
		}
		if !sameAnswerSets(got, want) {
			t.Fatalf("%s: snapshot answers differ (%d vs %d)", q.Name, len(got), len(want))
		}
		base := p.IndexStats()
		const reps = 5
		for i := 0; i < reps; i++ {
			if _, err := b.Eval(ctx); err != nil {
				t.Fatal(err)
			}
			if _, err := b.EvalBool(ctx); err != nil {
				t.Fatal(err)
			}
		}
		warm := p.IndexStats()
		if warm.IndexBuilds != base.IndexBuilds {
			t.Fatalf("%s: warm evaluations built %d indexes, want 0",
				q.Name, warm.IndexBuilds-base.IndexBuilds)
		}
		if warm.Evals != base.Evals+2*reps {
			t.Fatalf("%s: evals %d -> %d, want +%d", q.Name, base.Evals, warm.Evals, 2*reps)
		}
		if warm.IndexProbes == base.IndexProbes {
			t.Fatalf("%s: warm evaluations did no probing at all", q.Name)
		}

		// Streaming against the snapshot enumerates the same set.
		var streamed Answers
		for tup := range b.Answers(ctx) {
			streamed = append(streamed, tup)
		}
		slices.SortFunc(streamed, func(a, b Tuple) int { return compareTuples(a, b) })
		if !sameAnswerSets(streamed, want) {
			t.Fatalf("%s: streamed %d answers, want %d", q.Name, len(streamed), len(want))
		}
	}
	if st := d.Stats(); st.IndexBuilds == 0 || st.IndexHits == 0 || st.IndexesCached == 0 {
		t.Fatalf("snapshot cache never exercised: %+v", st)
	}
}

func compareTuples(a, b Tuple) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return len(a) - len(b)
}

// Engine registry semantics: lookup counting, replacement, LRU
// eviction, updates, drop, and what the two reset levels clear.
func TestEngineDBRegistry(t *testing.T) {
	engine := NewEngine(WithDBCapacity(2))
	ctx := context.Background()

	if _, _, err := engine.RegisterDB("", testDB()); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, _, err := engine.RegisterDB("a", nil); err == nil {
		t.Fatal("nil database accepted")
	}

	da, replaced, err := engine.RegisterDB("a", testDB())
	if err != nil {
		t.Fatal(err)
	}
	if replaced {
		t.Fatal("first registration reported replaced")
	}
	if da2, replaced, err := engine.RegisterDB("a", testDB()); err != nil || !replaced {
		t.Fatalf("re-registration: replaced=%v, err=%v", replaced, err)
	} else if da2.Version() <= da.Version() {
		t.Fatal("re-registration did not advance the version")
	}
	if _, ok := engine.DB("a"); !ok {
		t.Fatal("a not found")
	}
	if _, ok := engine.DB("nope"); ok {
		t.Fatal("phantom registration")
	}

	// Update applies copy-on-write and replaces the registration.
	db2, err := engine.UpdateDB("a", NewDelta().Insert("E", 100, 101))
	if err != nil {
		t.Fatal(err)
	}
	if db2.Version() <= da.Version() || db2.Name() != "a" {
		t.Fatalf("update fork: version %d vs %d, name %q", db2.Version(), da.Version(), db2.Name())
	}
	cur, _ := engine.DB("a")
	if cur != db2 {
		t.Fatal("registry still serves the pre-update snapshot")
	}
	p, err := engine.PrepareExact(ctx, MustParse("Q(x,y) :- E(x,y)"))
	if err != nil {
		t.Fatal(err)
	}
	if ans, _ := p.Bind(db2).Eval(ctx); !ans.Contains(Tuple{100, 101}) {
		t.Fatal("update not visible in the fork")
	}
	if ans, _ := p.Bind(da).Eval(ctx); ans.Contains(Tuple{100, 101}) {
		t.Fatal("update leaked into the immutable original")
	}
	if _, err := engine.UpdateDB("ghost", NewDelta().Insert("E", 1, 1)); err == nil {
		t.Fatal("update of unregistered name accepted")
	}

	// LRU eviction at capacity 2: registering c evicts the least
	// recently used (b — "a" was just looked up).
	if _, _, err := engine.RegisterDB("b", testDB()); err != nil {
		t.Fatal(err)
	}
	engine.DB("a")
	if _, _, err := engine.RegisterDB("c", testDB()); err != nil {
		t.Fatal(err)
	}
	if _, ok := engine.DB("b"); ok {
		t.Fatal("LRU kept the stale entry")
	}
	if _, ok := engine.DB("a"); !ok {
		t.Fatal("LRU evicted the recently used entry")
	}
	st := engine.DBStats()
	if st.Entries != 2 || st.Evictions != 1 || st.Registered != 4 || st.Updates != 1 {
		t.Fatalf("registry stats = %+v", st)
	}

	// ResetCache leaves the registry (and the key memo) alone …
	engine.ResetCache()
	if _, ok := engine.DB("a"); !ok {
		t.Fatal("ResetCache dropped the registry")
	}
	// … ResetAll clears it.
	engine.ResetAll()
	if _, ok := engine.DB("a"); ok {
		t.Fatal("ResetAll left a registration behind")
	}
	if st := engine.DBStats(); st.Entries != 0 || st.Registered != 0 || st.Hits != 0 {
		t.Fatalf("registry stats after ResetAll = %+v", st)
	}

	// DropDB removes exactly the named entry; handed-out snapshots
	// stay usable.
	if _, _, err := engine.RegisterDB("d", testDB()); err != nil {
		t.Fatal(err)
	}
	if !engine.DropDB("d") || engine.DropDB("d") {
		t.Fatal("DropDB misreported")
	}
	if ok, _ := p.Bind(da).EvalBool(ctx); !ok {
		t.Fatal("dropped-era snapshot no longer evaluates")
	}
}

// Many goroutines evaluate different prepared queries against one
// shared snapshot while the registered name concurrently forks new
// versions — the -race proof that snapshots are immutable, the index
// cache is concurrency-safe, and updates never disturb readers.
func TestConcurrentSnapshotEvalAndUpdate(t *testing.T) {
	engine := NewEngine()
	ctx := context.Background()
	base := workload.EvalBenchDB(120)
	d, _, err := engine.RegisterDB("shared", base)
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"Q(a) :- E(a,b), E(b,c), E(c,d)",
		"Q(c) :- R1(c,l1), R2(c,l2)",
		"Q() :- E(x,y), E(y,x)",
		"Q(x,z) :- E(x,y), E(y,z)",
	}
	prepared := make([]*PreparedQuery, len(queries))
	wantLens := make([]int, len(queries))
	for i, src := range queries {
		p, err := engine.PrepareExact(ctx, MustParse(src))
		if err != nil {
			t.Fatal(err)
		}
		prepared[i] = p
		want, err := p.Bind(d).Eval(ctx)
		if err != nil {
			t.Fatal(err)
		}
		wantLens[i] = len(want)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i, p := range prepared {
		wg.Add(1)
		go func(i int, p *PreparedQuery) {
			defer wg.Done()
			b := p.Bind(d)
			for {
				select {
				case <-stop:
					return
				default:
				}
				// The pinned snapshot must keep answering identically no
				// matter how many forks the registry has moved through.
				ans, err := b.Eval(ctx)
				if err != nil {
					t.Error(err)
					return
				}
				if len(ans) != wantLens[i] {
					t.Errorf("query %d: snapshot answers changed under concurrent updates: %d vs %d",
						i, len(ans), wantLens[i])
					return
				}
				// And the current version must evaluate cleanly too.
				if cur, ok := engine.DB("shared"); ok {
					if _, err := p.Bind(cur).Eval(ctx); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(i, p)
	}
	for k := 0; k < 25; k++ {
		delta := NewDelta().Insert("E", 10_000+k, 10_001+k)
		if k%3 == 0 {
			delta.Delete("E", 10_000+k-3, 10_001+k-3)
		}
		if _, err := engine.UpdateDB("shared", delta); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// One BoundQuery with a parallel worker budget, hammered from many
// goroutines while UpdateDB keeps forking new snapshot versions — the
// -race proof for the morsel-driven executor: per-call forests are
// independent, the shared snapshot index cache tolerates concurrent
// parallel probes, and answers never waver. (CI runs this under -race
// with GOMAXPROCS=4 in the dedicated eval job.)
func TestParallelBoundQueryRaceWithUpdates(t *testing.T) {
	engine := NewEngine()
	ctx := context.Background()
	d, _, err := engine.RegisterDB("par", workload.EvalBenchDB(200))
	if err != nil {
		t.Fatal(err)
	}
	p, err := engine.PrepareExact(ctx, MustParse("Q(a) :- E(a,b), E(b,c), E(c,d)"))
	if err != nil {
		t.Fatal(err)
	}
	b := p.Bind(d).Parallel(4)
	want, err := b.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := p.Bind(d).Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !sameAnswerSets(want, serial) {
		t.Fatalf("parallel bound answers differ from serial: %d vs %d", len(want), len(serial))
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch g % 3 {
				case 0:
					ans, err := b.Eval(ctx)
					if err != nil || !sameAnswerSets(ans, want) {
						t.Errorf("parallel eval diverged under updates (err %v, %d answers)", err, len(ans))
						return
					}
				case 1:
					if ok, err := b.EvalBool(ctx); err != nil || ok != (len(want) > 0) {
						t.Errorf("parallel bool diverged: %v, %v", ok, err)
						return
					}
				default:
					n := 0
					for range b.Answers(ctx) {
						n++
					}
					if n != len(want) {
						t.Errorf("parallel stream yielded %d answers, want %d", n, len(want))
						return
					}
				}
			}
		}(g)
	}
	for k := 0; k < 20; k++ {
		delta := NewDelta().Insert("E", 50_000+k, 50_001+k).Insert("R1", 50_000+k, 50_001+k)
		if _, err := engine.UpdateDB("par", delta); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if st := p.IndexStats(); st.ParallelEvals == 0 {
		t.Fatalf("parallel evaluations not counted: %+v", st)
	}
}
